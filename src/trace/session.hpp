// A trace session: the set of per-thread event rings for one run, plus
// the thread-local binding the instrumentation macros emit through.
//
// Tracks are identified Chrome-style: `pid` (an OS-process stand-in — we
// use the simulated Charm++ process / endpoint id) and `tid` (the worker
// PE's local index, or workers+i for comm thread i).  The Machine owns
// one Session per run; benches and the DES engine build their own.
//
// Thread-safety: make_ring() takes a mutex (setup path); emit goes
// straight to the caller's SPSC ring; collect() may run concurrently with
// emitters — each ring's drain is its single consumer side.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/timing.hpp"
#include "trace/ring.hpp"

namespace bgq::trace {

/// One flushed track: identity plus every event drained so far, in
/// emission order, with the drop count at the time of the last collect.
struct Track {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;
  std::uint64_t dropped = 0;
  std::uint64_t high_water = 0;  ///< peak ring occupancy at last collect
  std::vector<Event> events;
};

/// All tracks of a session, in ring-creation order.
struct FlatTrace {
  std::vector<Track> tracks;

  std::size_t total_events() const noexcept {
    std::size_t n = 0;
    for (const auto& t : tracks) n += t.events.size();
    return n;
  }
  std::uint64_t total_dropped() const noexcept {
    std::uint64_t n = 0;
    for (const auto& t : tracks) n += t.dropped;
    return n;
  }
};

class Session {
 public:
  /// A disabled session hands out null rings — every emit site already
  /// null-checks, so a disabled session is a handful of branches total.
  explicit Session(bool enabled = true, std::size_t ring_capacity = 1 << 14)
      : enabled_(enabled), ring_capacity_(ring_capacity) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool enabled() const noexcept { return enabled_; }

  /// Create (and own) a ring for one track; nullptr when disabled.
  EventRing* make_ring(std::uint32_t pid, std::uint32_t tid,
                       std::string name) {
    if (!enabled_) return nullptr;
    std::lock_guard<std::mutex> g(mu_);
    slots_.push_back(
        std::make_unique<Slot>(pid, tid, std::move(name), ring_capacity_));
    return &slots_.back()->ring;
  }

  /// Drain every ring into the session's accumulated trace and return it.
  /// Per ring, events accumulate in FIFO emission order across collects.
  /// Safe to call while emitters are live (they may keep appending; what
  /// was published before the drain is captured).
  const FlatTrace& collect() {
    std::lock_guard<std::mutex> g(mu_);
    flat_.tracks.resize(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Track& t = flat_.tracks[i];
      t.pid = slots_[i]->pid;
      t.tid = slots_[i]->tid;
      t.name = slots_[i]->name;
      slots_[i]->ring.drain(t.events);
      t.dropped = slots_[i]->ring.dropped();
      t.high_water = slots_[i]->ring.high_water();
    }
    return flat_;
  }

  /// Per-ring loss/occupancy accounting without draining any events —
  /// metrics_report() surfaces these so a truncated trace is visible
  /// instead of silently biased.
  struct RingStat {
    std::string name;
    std::uint64_t dropped = 0;
    std::uint64_t high_water = 0;
    std::size_t capacity = 0;
  };
  std::vector<RingStat> ring_stats() const {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<RingStat> out;
    out.reserve(slots_.size());
    for (const auto& s : slots_) {
      out.push_back({s->name, s->ring.dropped(), s->ring.high_water(),
                     s->ring.capacity()});
    }
    return out;
  }

  /// The trace accumulated by previous collect() calls.
  const FlatTrace& flat() const noexcept { return flat_; }

  // ---- thread binding -----------------------------------------------------
  // The macros in trace.hpp and the compiled-in runtime emit sites route
  // through the calling thread's bound ring; an unbound (or disabled)
  // thread costs one thread-local load and a branch.

  static EventRing* thread_ring() noexcept { return tls_ring_; }
  static void bind_thread(EventRing* r) noexcept { tls_ring_ = r; }

  /// Convenience: create a ring and bind it to the calling thread.
  EventRing* adopt_thread(std::uint32_t pid, std::uint32_t tid,
                          std::string name) {
    EventRing* r = make_ring(pid, tid, std::move(name));
    bind_thread(r);
    return r;
  }

 private:
  struct Slot {
    Slot(std::uint32_t p, std::uint32_t t, std::string n, std::size_t cap)
        : pid(p), tid(t), name(std::move(n)), ring(cap) {}
    std::uint32_t pid;
    std::uint32_t tid;
    std::string name;
    EventRing ring;
  };

  const bool enabled_;
  const std::size_t ring_capacity_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Slot>> slots_;
  FlatTrace flat_;

  static thread_local EventRing* tls_ring_;
};

inline thread_local EventRing* Session::tls_ring_ = nullptr;

/// Emit into the calling thread's bound ring, stamping host time — taken
/// lazily so an unbound thread pays no clock read.  The always-compiled
/// runtime emit sites use this directly; the BGQ_TRACE macros expand to
/// it only when tracing is compiled in.
inline void emit_here(EventKind kind, std::uint32_t arg) noexcept {
  if (EventRing* r = Session::thread_ring()) r->emit({now_ns(), arg, kind});
}

/// Cid-stamped variant for message-lifecycle hops; returns the timestamp
/// used (0 when unbound) so callers can reuse it for online histograms
/// without a second clock read.
inline std::uint64_t emit_here(EventKind kind, std::uint32_t arg,
                               std::uint64_t cid) noexcept {
  if (EventRing* r = Session::thread_ring()) {
    const std::uint64_t t = now_ns();
    r->emit({t, arg, kind, cid});
    return t;
  }
  return 0;
}

}  // namespace bgq::trace
