// Trace event model for the Projections-style tracing subsystem.
//
// Every instrumented layer — the Converse machine, the lockless queues,
// the pool allocator, the comm threads, the wakeup gates, and the DES
// engine — emits the same 16-byte timestamped record into a per-thread
// ring (ring.hpp).  Exporters (chrome_export.hpp, summary.hpp) consume
// the flushed streams; nothing here allocates or locks.
#pragma once

#include <cstdint>

namespace bgq::trace {

/// What happened.  Kinds come in three flavours:
///   * span begins/ends (paired, nestable per thread) — handler execution,
///     idle-poll intervals, comm-thread parks, MD phases, DES tasks;
///   * instants — message enqueue/dequeue, queue overflow spills, alloc
///     grow/spill, comm-thread advances, gate wakeups, DES event dispatch.
enum class EventKind : std::uint8_t {
  // Converse machine layer (runtime-gated by MachineConfig::trace_events).
  kMsgEnqueue = 0,   ///< instant; arg = destination PE rank
  kMsgDequeue,       ///< instant; arg = handler id
  kHandlerBegin,     ///< span; arg = handler id
  kHandlerEnd,       ///< span; arg = handler id
  kIdleBegin,        ///< span; idle-poll interval opened
  kIdleEnd,          ///< span; work found again
  // Lockless core (compiled in only with -DBGQ_TRACE).
  kQueueSpill,       ///< instant; lockless ring full, overflow spill
  kAllocPoolHit,     ///< instant; arg = size class
  kAllocHeapGrow,    ///< instant; pool empty, buffer from heap; arg = class
  kAllocHeapSpill,   ///< instant; pool full past threshold; arg = class
  kCommAdvance,      ///< instant; arg = events serviced in the sweep
  kParkBegin,        ///< span; comm thread parks on the wakeup gate
  kParkEnd,          ///< span; comm thread resumed
  kGateWake,         ///< instant; a producer woke a gate
  // Application phases (mini-NAMD time profiles, Figs. 3/9/10).
  kPhaseBegin,       ///< span; arg = phase id (0 cutoff, 1 PME)
  kPhaseEnd,         ///< span; arg = phase id
  // Discrete-event simulator (sim/engine.hpp, simulated timestamps).
  kSimEvent,         ///< instant; one DES dispatch; arg = sequence low bits
  kTaskBegin,        ///< span; a Server occupancy interval
  kTaskEnd,          ///< span
  // Free-form instrumentation from benches/tests.
  kUser,             ///< instant; meaning of arg is the emitter's business
};

/// Number of distinct kinds (summary histogram sizing).
inline constexpr unsigned kEventKindCount =
    static_cast<unsigned>(EventKind::kUser) + 1;

/// Human-readable kind label (Chrome trace names, summaries).
inline const char* kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kMsgEnqueue: return "msg.enqueue";
    case EventKind::kMsgDequeue: return "msg.dequeue";
    case EventKind::kHandlerBegin:
    case EventKind::kHandlerEnd: return "handler";
    case EventKind::kIdleBegin:
    case EventKind::kIdleEnd: return "idle";
    case EventKind::kQueueSpill: return "queue.spill";
    case EventKind::kAllocPoolHit: return "alloc.pool_hit";
    case EventKind::kAllocHeapGrow: return "alloc.heap_grow";
    case EventKind::kAllocHeapSpill: return "alloc.heap_spill";
    case EventKind::kCommAdvance: return "comm.advance";
    case EventKind::kParkBegin:
    case EventKind::kParkEnd: return "park";
    case EventKind::kGateWake: return "gate.wake";
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd: return "phase";
    case EventKind::kSimEvent: return "sim.event";
    case EventKind::kTaskBegin:
    case EventKind::kTaskEnd: return "task";
    case EventKind::kUser: return "user";
  }
  return "?";
}

/// True for kinds that open a span; `end_of(k)` gives the closing kind.
inline bool is_begin(EventKind k) noexcept {
  switch (k) {
    case EventKind::kHandlerBegin:
    case EventKind::kIdleBegin:
    case EventKind::kParkBegin:
    case EventKind::kPhaseBegin:
    case EventKind::kTaskBegin: return true;
    default: return false;
  }
}

inline bool is_end(EventKind k) noexcept {
  switch (k) {
    case EventKind::kHandlerEnd:
    case EventKind::kIdleEnd:
    case EventKind::kParkEnd:
    case EventKind::kPhaseEnd:
    case EventKind::kTaskEnd: return true;
    default: return false;
  }
}

inline EventKind end_of(EventKind begin) noexcept {
  return static_cast<EventKind>(static_cast<std::uint8_t>(begin) + 1);
}

/// One trace record.  Timestamps are nanoseconds: host `now_ns()` for the
/// functional runtime, simulated-time-in-ns for the DES engine — either
/// way monotone per emitting track, which is all the exporters require.
struct Event {
  std::uint64_t t_ns;
  std::uint32_t arg;
  EventKind kind;
};

}  // namespace bgq::trace
