// Trace event model for the Projections-style tracing subsystem.
//
// Every instrumented layer — the Converse machine, the lockless queues,
// the pool allocator, the comm threads, the wakeup gates, and the DES
// engine — emits the same 16-byte timestamped record into a per-thread
// ring (ring.hpp).  Exporters (chrome_export.hpp, summary.hpp) consume
// the flushed streams; nothing here allocates or locks.
#pragma once

#include <cstdint>

namespace bgq::trace {

/// What happened.  Kinds come in three flavours:
///   * span begins/ends (paired, nestable per thread) — handler execution,
///     idle-poll intervals, comm-thread parks, MD phases, DES tasks;
///   * instants — message enqueue/dequeue, queue overflow spills, alloc
///     grow/spill, comm-thread advances, gate wakeups, DES event dispatch.
enum class EventKind : std::uint8_t {
  // Converse machine layer (runtime-gated by MachineConfig::trace_events).
  kMsgEnqueue = 0,   ///< instant; arg = destination PE rank
  kMsgDequeue,       ///< instant; arg = handler id
  // Message-lifecycle hops (cid-stamped; the causal trace the post-mortem
  // analyzer in analysis.hpp reconstructs per-message lifecycles from).
  kMsgSend,          ///< instant; a PE handed a message to the runtime;
                     ///< arg = destination PE rank
  kNetInject,        ///< instant; packet entered the fabric; arg = dst EP
  kNetBacklog,       ///< instant; send parked in the reliability
                     ///< backpressure backlog; arg = dst EP
  kNetRetransmit,    ///< instant; reliability layer re-injected an unacked
                     ///< packet; arg = dst EP
  kNetDeliver,       ///< instant; packet landed in a reception FIFO;
                     ///< arg = dst EP
  kMsgRecv,          ///< instant; dispatch callback invoked on the
                     ///< advancing thread; arg = origin EP
  kHandlerBegin,     ///< span; arg = handler id
  kHandlerEnd,       ///< span; arg = handler id
  kIdleBegin,        ///< span; idle-poll interval opened
  kIdleEnd,          ///< span; work found again
  // Lockless core (compiled in only with -DBGQ_TRACE).
  kQueueSpill,       ///< instant; lockless ring full, overflow spill
  kAllocPoolHit,     ///< instant; arg = size class
  kAllocHeapGrow,    ///< instant; pool empty, buffer from heap; arg = class
  kAllocHeapSpill,   ///< instant; pool full past threshold; arg = class
  kCommAdvance,      ///< instant; arg = events serviced in the sweep
  kParkBegin,        ///< span; comm thread parks on the wakeup gate
  kParkEnd,          ///< span; comm thread resumed
  kGateWake,         ///< instant; a producer woke a gate
  // Application phases (mini-NAMD time profiles, Figs. 3/9/10).
  kPhaseBegin,       ///< span; arg = phase id (0 cutoff, 1 PME)
  kPhaseEnd,         ///< span; arg = phase id
  // Discrete-event simulator (sim/engine.hpp, simulated timestamps).
  kSimEvent,         ///< instant; one DES dispatch; arg = sequence low bits
  kTaskBegin,        ///< span; a Server occupancy interval
  kTaskEnd,          ///< span
  // Message aggregation (src/tram/, runtime-gated like the machine
  // layer's events).
  kTramFlushBegin,   ///< span; a staged batch is packed + sent;
                     ///< arg = destination process
  kTramFlushEnd,     ///< span; arg = destination process
  // Free-form instrumentation from benches/tests.
  kUser,             ///< instant; meaning of arg is the emitter's business
};

/// Number of distinct kinds (summary histogram sizing).
inline constexpr unsigned kEventKindCount =
    static_cast<unsigned>(EventKind::kUser) + 1;

/// Human-readable kind label (Chrome trace names, summaries).
inline const char* kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kMsgEnqueue: return "msg.enqueue";
    case EventKind::kMsgDequeue: return "msg.dequeue";
    case EventKind::kMsgSend: return "msg.send";
    case EventKind::kNetInject: return "net.inject";
    case EventKind::kNetBacklog: return "net.backlog";
    case EventKind::kNetRetransmit: return "net.retransmit";
    case EventKind::kNetDeliver: return "net.deliver";
    case EventKind::kMsgRecv: return "msg.recv";
    case EventKind::kHandlerBegin:
    case EventKind::kHandlerEnd: return "handler";
    case EventKind::kIdleBegin:
    case EventKind::kIdleEnd: return "idle";
    case EventKind::kQueueSpill: return "queue.spill";
    case EventKind::kAllocPoolHit: return "alloc.pool_hit";
    case EventKind::kAllocHeapGrow: return "alloc.heap_grow";
    case EventKind::kAllocHeapSpill: return "alloc.heap_spill";
    case EventKind::kCommAdvance: return "comm.advance";
    case EventKind::kParkBegin:
    case EventKind::kParkEnd: return "park";
    case EventKind::kGateWake: return "gate.wake";
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd: return "phase";
    case EventKind::kSimEvent: return "sim.event";
    case EventKind::kTaskBegin:
    case EventKind::kTaskEnd: return "task";
    case EventKind::kTramFlushBegin:
    case EventKind::kTramFlushEnd: return "tram.flush";
    case EventKind::kUser: return "user";
  }
  return "?";
}

/// True for kinds that open a span; `end_of(k)` gives the closing kind.
inline bool is_begin(EventKind k) noexcept {
  switch (k) {
    case EventKind::kHandlerBegin:
    case EventKind::kIdleBegin:
    case EventKind::kParkBegin:
    case EventKind::kPhaseBegin:
    case EventKind::kTaskBegin:
    case EventKind::kTramFlushBegin: return true;
    default: return false;
  }
}

inline bool is_end(EventKind k) noexcept {
  switch (k) {
    case EventKind::kHandlerEnd:
    case EventKind::kIdleEnd:
    case EventKind::kParkEnd:
    case EventKind::kPhaseEnd:
    case EventKind::kTaskEnd:
    case EventKind::kTramFlushEnd: return true;
    default: return false;
  }
}

inline EventKind end_of(EventKind begin) noexcept {
  return static_cast<EventKind>(static_cast<std::uint8_t>(begin) + 1);
}

/// One trace record.  Timestamps are nanoseconds: host `now_ns()` for the
/// functional runtime, simulated-time-in-ns for the DES engine — either
/// way monotone per emitting track, which is all the exporters require.
///
/// `cid` is the causal (per-message) trace id: stamped into a message at
/// send time and carried through every lifecycle hop, so the analyzer can
/// reassemble one message's journey across tracks.  Zero means "not part
/// of a message lifecycle" — every pre-existing emit site stays valid
/// because the field is trailing and defaulted.
struct Event {
  std::uint64_t t_ns;
  std::uint32_t arg;
  EventKind kind;
  std::uint64_t cid = 0;
};

}  // namespace bgq::trace
