// Lock-free bounded event ring, one per traced thread.
//
// Shape: single producer (the owning thread, on its hot path) / single
// consumer (whoever flushes — an exporter at quiesce, or a collector
// running concurrently).  The producer publishes a slot with a release
// store of the head; the consumer acquires the head before reading slots
// and releases the tail after, so slot payloads never race even though
// they are plain structs.  A full ring drops the *new* event and counts
// it — tracing must never block or unboundedly buffer the runtime it is
// observing (the Projections rule), and the drop counter makes the loss
// explicit in every export.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cacheline.hpp"
#include "trace/event.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::trace {

class EventRing {
 public:
  /// Capacity rounds up to a power of two.
  explicit EventRing(std::size_t capacity = 1 << 14)
      : size_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(size_ - 1),
        slots_(size_) {}

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Producer side, owning thread only.  Returns false (and counts a
  /// drop) when the ring is full.
  bool emit(Event ev) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t pending = head - tail_.load(std::memory_order_acquire);
    if (pending >= size_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      BGQ_SCHED_POINT("trace.emit.dropped");
      return false;
    }
    // Occupancy high-water mark (producer-only write): makes a ring that
    // ran near-full — and therefore a trace that is about to bias — visible
    // in metrics_report() even when no event was actually dropped yet.
    if (pending + 1 > hwm_.load(std::memory_order_relaxed)) {
      hwm_.store(pending + 1, std::memory_order_relaxed);
    }
    slots_[head & mask_] = ev;
    BGQ_SCHED_POINT("trace.emit.staged");
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, one thread at a time.  Appends everything currently
  /// published to `out` in emission order; returns the number drained.
  std::size_t drain(std::vector<Event>& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    BGQ_SCHED_POINT("trace.drain.snapshot");
    for (std::uint64_t i = tail; i != head; ++i) {
      out.push_back(slots_[i & mask_]);
    }
    BGQ_SCHED_POINT("trace.drain.copied");
    tail_.store(head, std::memory_order_release);
    return static_cast<std::size_t>(head - tail);
  }

  std::size_t capacity() const noexcept { return size_; }

  /// Events lost to a full ring since construction.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Events ever published (drained or not, not counting drops).
  std::uint64_t emitted() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Highest occupancy ever reached (events staged and not yet drained).
  std::uint64_t high_water() const noexcept {
    return hwm_.load(std::memory_order_relaxed);
  }

  /// Approximate fill (exact when quiescent).
  std::size_t pending() const noexcept {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

 private:
  const std::size_t size_;
  const std::size_t mask_;
  std::vector<Event> slots_;

  alignas(kL2Line) std::atomic<std::uint64_t> head_{0};   // producer-owned
  alignas(kL2Line) std::atomic<std::uint64_t> tail_{0};   // consumer-owned
  alignas(kL2Line) std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> hwm_{0};                     // producer-owned
};

}  // namespace bgq::trace
