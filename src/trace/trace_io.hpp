// Flat-trace serialization: the `bgq-trace-v1` JSON schema that carries a
// collected Session (every track, every event, drop accounting) out of
// the process and into the bgq-prof post-mortem analyzer.
//
// Layout:
//   {
//     "schema": "bgq-trace-v1",
//     "t0_ns": <absolute ns of the earliest event>,
//     "tracks": [
//       { "pid": 0, "tid": 0, "name": "pe0",
//         "dropped": 0, "high_water": 12,
//         "events": [ { "t": 123, "k": 7, "a": 1, "c": 4294967297 }, ... ]
//       }, ...
//     ]
//   }
//
// Event timestamps are re-based to t0_ns so every number in the file fits
// comfortably in a JSON double (the steady clock's absolute nanoseconds
// would not after ~104 days of uptime); the analyzer only ever consumes
// differences, so the re-base is lossless for it.  t0_ns is one ns before
// the earliest event, keeping every written timestamp >= 1 — a zero
// timestamp is the analyzer's "hop absent" sentinel.  `k` is the numeric
// EventKind, `c` is the causal id and is omitted when zero.
#pragma once

#include <cstdint>
#include <istream>
#include <iterator>
#include <ostream>
#include <stdexcept>
#include <string>

#include "trace/event.hpp"
#include "trace/json.hpp"
#include "trace/json_read.hpp"
#include "trace/session.hpp"

namespace bgq::trace {

inline void write_flat_trace(std::ostream& os, const FlatTrace& flat) {
  std::uint64_t t0 = UINT64_MAX;
  for (const Track& t : flat.tracks) {
    for (const Event& e : t.events) t0 = e.t_ns < t0 ? e.t_ns : t0;
  }
  // Base one ns before the earliest event: written timestamps stay >= 1,
  // and 0 remains free as the analyzer's "hop absent" sentinel.
  t0 = t0 == UINT64_MAX ? 0 : (t0 > 0 ? t0 - 1 : 0);

  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "bgq-trace-v1");
  w.kv("t0_ns", t0);
  w.key("tracks");
  w.begin_array();
  for (const Track& t : flat.tracks) {
    w.begin_object();
    w.kv("pid", t.pid);
    w.kv("tid", t.tid);
    w.kv("name", std::string_view(t.name));
    w.kv("dropped", t.dropped);
    w.kv("high_water", t.high_water);
    w.key("events");
    w.begin_array();
    for (const Event& e : t.events) {
      w.begin_object();
      w.kv("t", e.t_ns - t0);
      w.kv("k", static_cast<std::uint64_t>(e.kind));
      w.kv("a", e.arg);
      if (e.cid != 0) w.kv("c", e.cid);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

/// Parse a bgq-trace-v1 document.  Timestamps come back re-based (the
/// file's t0_ns maps to 0); throws on malformed JSON or a wrong schema.
inline FlatTrace read_flat_trace(const std::string& text) {
  const json::ValuePtr root = json::parse(text);
  if (!root->is_object() || root->at("schema").str != "bgq-trace-v1") {
    throw std::runtime_error("not a bgq-trace-v1 document");
  }
  FlatTrace flat;
  for (const json::ValuePtr& tv : root->at("tracks").arr) {
    Track t;
    t.pid = static_cast<std::uint32_t>(tv->u64("pid"));
    t.tid = static_cast<std::uint32_t>(tv->u64("tid"));
    t.name = tv->at("name").str;
    t.dropped = tv->u64("dropped");
    t.high_water = tv->u64("high_water");
    for (const json::ValuePtr& ev : tv->at("events").arr) {
      Event e;
      e.t_ns = ev->u64("t");
      const std::uint64_t k = ev->u64("k");
      if (k >= kEventKindCount) {
        throw std::runtime_error("bad event kind " + std::to_string(k));
      }
      e.kind = static_cast<EventKind>(k);
      e.arg = static_cast<std::uint32_t>(ev->u64("a"));
      e.cid = ev->get("c") != nullptr ? ev->u64("c") : 0;
      t.events.push_back(e);
    }
    flat.tracks.push_back(std::move(t));
  }
  return flat;
}

/// Convenience: slurp a stream and parse it.
inline FlatTrace read_flat_trace(std::istream& is) {
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  return read_flat_trace(text);
}

}  // namespace bgq::trace
