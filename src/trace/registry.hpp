// Process-wide counter/gauge registry — the replacement for the PeStats
// fields that used to be scattered through the machine layer.
//
// Names are interned once (setup path, mutex) into dense ids; each traced
// thread of execution owns a *shard*, a plain array of cells indexed by
// id.  Hot-path increments are one non-atomic add on the owning shard —
// exactly the cost of the old `++stats_.messages_executed` — and totals
// are summed across shards at report time.  Like the PeStats they
// replace, totals are exact at quiesce (after Machine::run returns) and
// advisory while threads are live.
//
// Gauges are process-wide point-in-time values (pool occupancy, comm
// sweeps) written at report time by whoever owns the source counter.
//
// Naming scheme: lowercase dotted `<subsystem>.<object>.<metric>`, e.g.
// `pe.msgs.executed`, `pe.sends.network`, `alloc.pool.hits`,
// `comm.parks`.  Keep units in the trailing segment when ambiguous
// (`pe.busy_ns`).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/histogram.hpp"

namespace bgq::trace {

/// A flat, name-sorted snapshot of every counter and gauge.
struct Report {
  std::vector<std::pair<std::string, std::uint64_t>> entries;

  /// Value of `name`, or 0 when absent.
  std::uint64_t value(std::string_view name) const noexcept {
    for (const auto& [k, v] : entries) {
      if (k == name) return v;
    }
    return 0;
  }
  bool has(std::string_view name) const noexcept {
    for (const auto& [k, v] : entries) {
      if (k == name) return true;
    }
    return false;
  }
};

class Registry {
 public:
  using Id = std::size_t;

  /// One thread's block of counter cells and histogram instances.
  /// add()/get()/record() are owner-thread operations; the registry reads
  /// them only at report time.
  class Shard {
   public:
    void add(Id id, std::uint64_t v = 1) noexcept {
      if (id >= cells_.size()) cells_.resize(id + 1, 0);
      cells_[id] += v;
    }
    std::uint64_t get(Id id) const noexcept {
      return id < cells_.size() ? cells_[id] : 0;
    }
    /// Record one sample into this shard's instance of histogram `id`
    /// (an id from intern_hist, not intern).
    void record(Id id, std::uint64_t v) noexcept {
      if (id >= hists_.size()) hists_.resize(id + 1);
      hists_[id].record(v);
    }
    const Histogram* hist(Id id) const noexcept {
      return id < hists_.size() ? &hists_[id] : nullptr;
    }
    const std::string& label() const noexcept { return label_; }

   private:
    friend class Registry;
    explicit Shard(std::string label, std::size_t reserve,
                   std::size_t hist_reserve)
        : label_(std::move(label)),
          cells_(reserve, 0),
          hists_(hist_reserve) {}
    std::string label_;
    std::vector<std::uint64_t> cells_;
    std::vector<Histogram> hists_;
  };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Intern `name` into a dense id (idempotent; thread-safe).  Intern all
  /// counters before creating shards so cells never grow on a hot path.
  Id intern(std::string_view name) {
    std::lock_guard<std::mutex> g(mu_);
    for (Id i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return i;
    }
    names_.emplace_back(name);
    return names_.size() - 1;
  }

  /// Intern a histogram name into its own dense id space (idempotent;
  /// thread-safe).  Intern all histograms before creating shards so the
  /// per-shard Histogram vector never grows on a hot path.
  Id intern_hist(std::string_view name) {
    std::lock_guard<std::mutex> g(mu_);
    for (Id i = 0; i < hist_names_.size(); ++i) {
      if (hist_names_[i] == name) return i;
    }
    hist_names_.emplace_back(name);
    return hist_names_.size() - 1;
  }

  /// Create (and own) a shard sized to the counters interned so far.
  Shard* make_shard(std::string label) {
    std::lock_guard<std::mutex> g(mu_);
    shards_.push_back(std::unique_ptr<Shard>(
        new Shard(std::move(label), names_.size(), hist_names_.size())));
    return shards_.back().get();
  }

  // ---- thread binding -------------------------------------------------
  // Mirrors Session's ring binding: each traced thread binds its shard
  // once, and always-compiled runtime record sites go through the TLS
  // pointer so callers that run on foreign threads (fabric delivery, comm
  // threads) still charge the right shard.  Unbound threads pay one TLS
  // load and a branch.

  static Shard* thread_shard() noexcept { return tls_shard_; }
  static void bind_thread(Shard* s) noexcept { tls_shard_ = s; }

  /// Record into the calling thread's bound shard, if any.
  static void record_here(Id hist_id, std::uint64_t v) noexcept {
    if (Shard* s = tls_shard_) s->record(hist_id, v);
  }

  /// Histogram `name` merged across all shards (exact at quiesce).
  Histogram hist_total(std::string_view name) const {
    std::lock_guard<std::mutex> g(mu_);
    Histogram out;
    for (Id i = 0; i < hist_names_.size(); ++i) {
      if (hist_names_[i] != name) continue;
      for (const auto& s : shards_) {
        if (const Histogram* h = s->hist(i)) out.merge(*h);
      }
      break;
    }
    return out;
  }

  /// Every interned histogram name with its cross-shard merge, in intern
  /// order (report/export path).
  std::vector<std::pair<std::string, Histogram>> hist_report() const {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<std::pair<std::string, Histogram>> out;
    out.reserve(hist_names_.size());
    for (Id i = 0; i < hist_names_.size(); ++i) {
      Histogram merged;
      for (const auto& s : shards_) {
        if (const Histogram* h = s->hist(i)) merged.merge(*h);
      }
      out.emplace_back(hist_names_[i], merged);
    }
    return out;
  }

  /// Set a process-wide gauge (report-time writers; thread-safe).
  void set_gauge(std::string_view name, std::uint64_t v) {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& [k, old] : gauges_) {
      if (k == name) {
        old = v;
        return;
      }
    }
    gauges_.emplace_back(std::string(name), v);
  }

  /// Sum of `name` across all shards, plus its gauge if set.
  std::uint64_t total(std::string_view name) const {
    std::lock_guard<std::mutex> g(mu_);
    return total_locked(name);
  }

  /// Start a new reporting epoch: every counter and gauge value reported
  /// from now on is relative to this instant (clamped at zero), so
  /// post-restart `ft.*`/`net.*` traffic isn't conflated with pre-crash
  /// totals.  Shard cells are NOT touched — owner threads keep their
  /// plain non-atomic increments; only the report-time view shifts.
  /// Callable any time; best called at a quiescent point (recovery
  /// barrier) so the baseline is exact.
  void reset_epoch() {
    std::lock_guard<std::mutex> g(mu_);
    base_.assign(names_.size(), 0);
    for (Id i = 0; i < names_.size(); ++i) {
      for (const auto& s : shards_) base_[i] += s->get(i);
    }
    gauge_base_ = gauges_;
  }

  /// Every counter (summed over shards) and gauge, sorted by name —
  /// relative to the last reset_epoch(), if any.
  Report report() const {
    std::lock_guard<std::mutex> g(mu_);
    Report r;
    for (Id i = 0; i < names_.size(); ++i) {
      std::uint64_t sum = 0;
      for (const auto& s : shards_) sum += s->get(i);
      r.entries.emplace_back(names_[i], epoch_adjust(i, sum));
    }
    for (const auto& [k, v] : gauges_) {
      const std::uint64_t gv = gauge_adjust(k, v);
      bool merged = false;
      for (auto& [rk, rv] : r.entries) {
        if (rk == k) {
          rv += gv;
          merged = true;
          break;
        }
      }
      if (!merged) r.entries.emplace_back(k, gv);
    }
    std::sort(r.entries.begin(), r.entries.end());
    return r;
  }

  std::size_t counter_count() const {
    std::lock_guard<std::mutex> g(mu_);
    return names_.size();
  }

 private:
  /// Counter `i`'s raw cross-shard sum shifted to the current epoch.
  std::uint64_t epoch_adjust(Id i, std::uint64_t sum) const noexcept {
    const std::uint64_t b = i < base_.size() ? base_[i] : 0;
    return sum > b ? sum - b : 0;
  }
  std::uint64_t gauge_adjust(std::string_view name,
                             std::uint64_t v) const noexcept {
    for (const auto& [k, b] : gauge_base_) {
      if (k == name) return v > b ? v - b : 0;
    }
    return v;
  }

  std::uint64_t total_locked(std::string_view name) const {
    for (Id i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) {
        std::uint64_t sum = 0;
        for (const auto& s : shards_) sum += s->get(i);
        sum = epoch_adjust(i, sum);
        for (const auto& [k, v] : gauges_) {
          if (k == name) sum += gauge_adjust(k, v);
        }
        return sum;
      }
    }
    for (const auto& [k, v] : gauges_) {
      if (k == name) return gauge_adjust(k, v);
    }
    return 0;
  }

  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::vector<std::string> hist_names_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::pair<std::string, std::uint64_t>> gauges_;
  std::vector<std::uint64_t> base_;  // per-counter epoch baselines
  std::vector<std::pair<std::string, std::uint64_t>> gauge_base_;

  static thread_local Shard* tls_shard_;
};

inline thread_local Registry::Shard* Registry::tls_shard_ = nullptr;

}  // namespace bgq::trace
