// Umbrella header + the compile-time instrumentation gate.
//
// Two gating levels, deliberately different:
//
//   * Machine-layer events (message enqueue/dequeue, handler begin/end,
//     idle transitions, MD phases) are always compiled and runtime-gated:
//     the emit site checks a ring pointer that is null unless the run was
//     configured with tracing on (MachineConfig::trace_events).  This is
//     the same cost shape as the old `if (trace_enabled_)` branch.
//
//   * Lockless-core micro events (queue spills, allocator grow/spill,
//     comm-thread advance/park, gate wakeups) sit on paths measured in
//     nanoseconds, so their BGQ_TRACE_* macros compile to nothing unless
//     the build defines BGQ_TRACE (CMake: -DBGQ_TRACE=ON).  With the
//     option off, bench_queue/bench_pingpong see bit-identical hot paths.
//
// Emitting never blocks and never allocates: a full ring counts a drop
// and moves on (ring.hpp).
#pragma once

#include "common/timing.hpp"
#include "trace/analysis.hpp"
#include "trace/chrome_export.hpp"
#include "trace/event.hpp"
#include "trace/histogram.hpp"
#include "trace/registry.hpp"
#include "trace/ring.hpp"
#include "trace/session.hpp"
#include "trace/summary.hpp"
#include "trace/trace_io.hpp"

namespace bgq::trace {

#if defined(BGQ_TRACE)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

}  // namespace bgq::trace

#if defined(BGQ_TRACE)
/// Instant event on the calling thread's bound ring, stamped with host
/// time.  No-op (and zero code) for unbound threads or disabled builds.
#define BGQ_TRACE_EVENT(kind, arg) \
  ::bgq::trace::emit_here((kind), static_cast<std::uint32_t>(arg))
#else
#define BGQ_TRACE_EVENT(kind, arg) ((void)0)
#endif
