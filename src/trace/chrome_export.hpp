// Chrome `trace_event` JSON exporter — the timeline view.
//
// Output loads directly into `about://tracing` or https://ui.perfetto.dev:
// one row (track) per traced thread, named span slices for handler /
// idle / park / phase / task intervals, instant ticks for the rest, and a
// `dropped` counter series surfacing ring overflow per track.
//
// Format notes (Trace Event Format, "JSON Object Format" flavour):
//   * `ts` is microseconds; we rebase to the earliest event so the
//     timeline starts near zero;
//   * span events are emitted as B/E pairs; the writer enforces stack
//     discipline per track — an unmatched E is dropped, unmatched Bs are
//     closed at the track's final timestamp — so a truncated ring (drops
//     in the middle of a span) still yields a trace every viewer accepts;
//   * thread naming uses `M` metadata records, the Projections-like
//     per-PE labels ("pe3", "comm0.1").
#pragma once

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

#include "trace/json.hpp"
#include "trace/session.hpp"

namespace bgq::trace {

inline void write_chrome_trace(std::ostream& os, const FlatTrace& trace) {
  JsonWriter w(os);

  std::uint64_t t0 = ~std::uint64_t{0};
  for (const auto& tr : trace.tracks) {
    for (const auto& e : tr.events) t0 = std::min(t0, e.t_ns);
  }
  if (t0 == ~std::uint64_t{0}) t0 = 0;
  const auto us = [t0](std::uint64_t t_ns) {
    return static_cast<double>(t_ns - t0) * 1e-3;
  };

  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  for (const auto& tr : trace.tracks) {
    // Track label.
    w.begin_object();
    w.kv("ph", "M");
    w.kv("name", "thread_name");
    w.kv("pid", tr.pid);
    w.kv("tid", tr.tid);
    w.key("args");
    w.begin_object();
    w.kv("name", tr.name);
    w.end_object();
    w.end_object();

    auto slice = [&](const char* ph, const Event& e, std::uint64_t at) {
      w.begin_object();
      w.kv("ph", ph);
      w.kv("name", kind_name(e.kind));
      w.kv("cat", "bgq");
      w.kv("ts", us(at));
      w.kv("pid", tr.pid);
      w.kv("tid", tr.tid);
      w.key("args");
      w.begin_object();
      w.kv("arg", e.arg);
      w.end_object();
      w.end_object();
    };

    std::vector<Event> open;  // span stack for this track
    std::uint64_t last_ts = t0;
    for (const Event& e : tr.events) {
      last_ts = std::max(last_ts, e.t_ns);
      if (is_begin(e.kind)) {
        slice("B", e, e.t_ns);
        open.push_back(e);
      } else if (is_end(e.kind)) {
        // Only close what is open (ring drops can orphan an E).
        if (!open.empty() && end_of(open.back().kind) == e.kind) {
          slice("E", e, e.t_ns);
          open.pop_back();
        }
      } else {
        w.begin_object();
        w.kv("ph", "i");
        w.kv("name", kind_name(e.kind));
        w.kv("cat", "bgq");
        w.kv("s", "t");
        w.kv("ts", us(e.t_ns));
        w.kv("pid", tr.pid);
        w.kv("tid", tr.tid);
        w.key("args");
        w.begin_object();
        w.kv("arg", e.arg);
        w.end_object();
        w.end_object();
      }
    }
    // Close anything the ring truncated mid-span.
    while (!open.empty()) {
      Event e = open.back();
      open.pop_back();
      e.kind = end_of(e.kind);
      slice("E", e, last_ts);
    }

    // Drop accounting as a counter series (visible in the viewer even
    // when zero — absence of loss is information too).
    w.begin_object();
    w.kv("ph", "C");
    w.kv("name", "dropped");
    w.kv("ts", us(last_ts));
    w.kv("pid", tr.pid);
    w.kv("tid", tr.tid);
    w.key("args");
    w.begin_object();
    w.kv("events", tr.dropped);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace bgq::trace
