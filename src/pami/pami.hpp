// PAMI-like active messaging library (§II-B) over the in-process fabric.
//
// The real PAMI (Parallel Active Messaging Interface) is BG/Q's low-level
// messaging layer: a Client per process, multiple Context objects that
// different threads drive concurrently without mutexes, active-message
// sends that fire registered dispatch callbacks on the destination, and
// one-sided rget/rput.  This module reproduces that API shape so the
// Converse machine layer above is the real algorithm from the paper:
//
//   PAMI_Send_immediate -> Context::send_immediate   (single MU descriptor,
//                                                     payload copied inline)
//   PAMI_Send           -> Context::send             (metadata + payload
//                                                     descriptors)
//   PAMI_Rget / Rput    -> Context::rget / rput      (one-sided RDMA)
//   PAMI_Context_advance-> Context::advance          (poll FIFO + work)
//   work queues         -> Context::post_work        (lockless, executed by
//                                                     the advancing thread)
//
// Thread contract (same as PAMI): distinct contexts may be driven by
// distinct threads concurrently with no locks; calls into ONE context must
// be externally serialized.  post_work() is the exception — it is the
// lockless MPSC channel any thread may use to hand work to the thread
// advancing the context.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "net/packet.hpp"
#include "pami/reliability.hpp"
#include "queue/l2_atomic_queue.hpp"
#include "wakeup/wakeup_unit.hpp"

namespace bgq::pami {

class Client;
class Context;

using EndpointId = topo::NodeId;

/// Arguments handed to an active-message dispatch callback.  Pointers are
/// valid only for the duration of the callback (the receiver copies out,
/// exactly as with real PAMI dispatches).
struct DispatchArgs {
  Context* context = nullptr;
  EndpointId origin = 0;
  const std::byte* metadata = nullptr;
  std::size_t metadata_bytes = 0;
  const std::byte* payload = nullptr;
  std::size_t payload_bytes = 0;
};

using DispatchFn = std::function<void(const DispatchArgs&)>;

/// Parameters for send / send_immediate.
struct SendParams {
  EndpointId dest = 0;
  std::uint16_t dispatch = 0;
  /// Which of the destination's contexts (reception FIFOs) to target.
  std::uint16_t dest_context = 0;
  const void* metadata = nullptr;
  std::size_t metadata_bytes = 0;
  const void* payload = nullptr;
  std::size_t payload_bytes = 0;
  /// Invoked once the payload buffer is reusable (both send flavours copy,
  /// so this fires before the call returns — kept for API fidelity).
  std::function<void()> local_done;
  /// Causal trace id carried through to the Packet (0 = untraced).
  std::uint64_t cid = 0;
  /// Skip the reliability layer even when the client enabled it: the
  /// packet goes out unsequenced, unacked, never retransmitted.  For
  /// traffic where loss is harmless and retransmit state per dead peer is
  /// not (heartbeats).
  bool best_effort = false;
};

/// One PAMI context: a reception FIFO, a lockless work queue, and the send
/// machinery.  Created via Client.
class Context {
 public:
  /// PAMI_Send_immediate limit on BG/Q (payload + metadata must fit one
  /// network packet's worth of immediate data).
  static constexpr std::size_t kImmediateMax = 128;

  Context(Client& client, std::uint16_t index);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  std::uint16_t index() const noexcept { return index_; }
  Client& client() noexcept { return client_; }

  /// Short-message send: payload+metadata copied into a single descriptor.
  /// Requires metadata_bytes + payload_bytes <= kImmediateMax.
  void send_immediate(const SendParams& p);

  /// General eager send (two descriptors: metadata, payload).  Any size.
  void send(const SendParams& p);

  /// One-sided RDMA read: pull `bytes` from `remote_src` (registered on
  /// endpoint `remote`) into `local_dst`; `done` runs on this context's
  /// advancing thread when the data has landed.
  void rget(EndpointId remote, const std::byte* remote_src,
            std::byte* local_dst, std::size_t bytes,
            std::function<void()> done);

  /// One-sided RDMA write: push bytes into `remote_dst` on endpoint
  /// `remote`; `remote_done` (optional) runs on the remote context's
  /// advancing thread after the data is visible there.
  void rput(EndpointId remote, std::byte* remote_dst,
            const std::byte* local_src, std::size_t bytes,
            std::uint16_t dest_context = 0,
            std::function<void()> remote_done = {});

  /// Poll this context: deliver arrived packets to dispatch callbacks, run
  /// RDMA completions, execute posted work.  Returns events processed.
  std::size_t advance(std::size_t max_events = SIZE_MAX);

  /// Hand a closure to whichever thread advances this context (lockless
  /// MPSC; wakes the advancing thread if it is parked).
  void post_work(std::function<void()> fn);

  /// True when the FIFO or the work queue has anything pending.
  bool has_pending() const;

  /// True when the reliability layer has timed work (unacked packets or a
  /// backpressure backlog): the advancing thread must not park forever —
  /// a lost ack produces no wake(), only a timeout.
  bool has_timers() const noexcept {
    return outstanding_.load(std::memory_order_relaxed) != 0 ||
           backlog_count_.load(std::memory_order_relaxed) != 0;
  }

  /// The gate the advancing thread parks on (the reception FIFO's gate by
  /// default; the comm-thread pool rebinds it).
  wakeup::WaitGate& gate();

  /// Rebind arrival/work wakeups to `g` (nullptr restores the default).
  void bind_gate(wakeup::WaitGate* g);

  // ---- statistics --------------------------------------------------------
  std::uint64_t sends() const noexcept { return sends_; }
  std::uint64_t immediate_sends() const noexcept { return imm_sends_; }
  std::uint64_t receives() const noexcept { return recvs_; }
  std::uint64_t work_executed() const noexcept { return work_done_; }

  // Reliability-protocol counters (all zero unless the client enabled
  // reliability; see pami/reliability.hpp).
  std::uint64_t retransmits() const noexcept {
    return retransmits_.load(std::memory_order_relaxed);
  }
  std::uint64_t dup_acks() const noexcept { return dup_acks_; }
  std::uint64_t piggybacked_acks() const noexcept { return acks_piggy_; }
  std::uint64_t standalone_acks() const noexcept { return acks_alone_; }
  std::uint64_t corrupt_drops() const noexcept { return corrupt_; }
  std::uint64_t dedup_drops() const noexcept { return dedup_; }
  std::uint64_t backpressure_stalls() const noexcept { return stalls_; }
  /// Dedup-table entries aged out past the sliding seq horizon.
  std::uint64_t dedup_evictions() const noexcept { return dedup_evicted_; }
  /// Unacked/backlogged packets culled because their peer died (instead
  /// of retrying into a blackhole until retries exhausted).
  std::uint64_t dead_peer_drops() const noexcept { return dead_drops_; }

  // Point-in-time queue depths (advisory off the advancing thread; the
  // hang watchdog reads them for its diagnostic dump).
  std::size_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_relaxed);
  }
  std::size_t backlog_size() const noexcept {
    return backlog_count_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkItem {
    std::function<void()> fn;
  };

  /// Retransmit-buffer entry: a private copy of an unacked packet.
  struct Pending {
    std::uint64_t seq = 0;
    net::Packet* copy = nullptr;
    std::uint64_t deadline_ns = 0;
    std::uint64_t rto_ns = 0;
    unsigned tries = 0;
  };

  /// Both directions of the flow between this context and one peer
  /// (endpoint, context).  Sender half: seq allocation + retransmit
  /// buffer.  Receiver half: dedup state + owed acks.
  struct Channel {
    std::uint64_t next_seq = 1;          // 0 means "unsequenced" on the wire
    std::vector<Pending> pending;        // unacked, ordered by send time

    std::uint64_t recv_cum = 0;          // all seqs <= this were delivered
    std::uint64_t max_seen = 0;          // highest seq ever received
    std::vector<std::uint64_t> recv_above;  // delivered seqs > recv_cum
    std::vector<std::uint64_t> owed_acks;   // to piggyback or flush
  };

  net::ReceptionFifo& fifo();
  void process(net::Packet* p);

  // Reliability internals (pami.cpp); all run on the advancing thread.
  Channel& channel(EndpointId ep, std::uint16_t ctx);
  void reliable_submit(net::Packet* pkt);
  void transmit(Channel& ch, net::Packet* pkt);
  bool reliable_receive(net::Packet* p);
  void ack_one(Channel& ch, std::uint64_t seq);
  std::size_t reliability_tick();

  Client& client_;
  const std::uint16_t index_;

  queue::L2AtomicQueue<WorkItem*> work_;

  // Channels keyed by (peer endpoint << 16) | peer context.  Only the
  // advancing thread touches this (PAMI thread contract), so no locks.
  std::unordered_map<std::uint64_t, Channel> chans_;
  std::deque<net::Packet*> backlog_;  // backpressured sends, FIFO order
  // Mutated only by the advancing thread; relaxed atomics because the
  // hang watchdog's diagnostic dump reads them from the monitor thread.
  std::atomic<std::size_t> outstanding_{0};  // unacked across channels
  std::atomic<std::size_t> backlog_count_{0};  // == backlog_.size()
  std::size_t owed_total_ = 0;        // owed acks across channels

  // Stats are written only by the threads owning the respective path; they
  // are plain counters read for reporting.
  std::uint64_t sends_ = 0;
  std::uint64_t imm_sends_ = 0;
  std::uint64_t recvs_ = 0;
  std::uint64_t work_done_ = 0;
  // Written only by the advancing thread, but read by the hang
  // watchdog's diagnostic dump from the monitor thread — relaxed
  // atomics keep those point-in-time reads defined (same cost as a
  // plain store on the owning thread).
  std::atomic<std::uint64_t> retransmits_{0};
  std::uint64_t dup_acks_ = 0;
  std::uint64_t acks_piggy_ = 0;
  std::uint64_t acks_alone_ = 0;
  std::uint64_t corrupt_ = 0;
  std::uint64_t dedup_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t dedup_evicted_ = 0;
  std::uint64_t dead_drops_ = 0;
};

/// One PAMI client per process (endpoint); owns the contexts and the
/// dispatch table shared by them.
class Client {
 public:
  static constexpr std::size_t kMaxDispatch = 256;

  Client(net::Fabric& fabric, EndpointId endpoint, unsigned ncontexts);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Context& context(unsigned i) { return *contexts_[i]; }
  unsigned context_count() const noexcept {
    return static_cast<unsigned>(contexts_.size());
  }

  EndpointId endpoint() const noexcept { return endpoint_; }
  net::Fabric& fabric() noexcept { return fabric_; }

  /// Register the callback for a dispatch id.  Must happen before traffic
  /// with that id arrives (PAMI_Dispatch_set has the same requirement).
  void set_dispatch(std::uint16_t id, DispatchFn fn);

  /// Dispatch lookup, bounds-checked: a dispatch id off the wire can be
  /// anything (a bit flip away from valid), so an out-of-range id must be
  /// a loud error, not an out-of-bounds read.
  const DispatchFn& dispatch(std::uint16_t id) const {
    if (id >= kMaxDispatch) {
      throw std::out_of_range("pami: dispatch id " + std::to_string(id) +
                              " out of range");
    }
    return dispatch_table_[id];
  }

  /// Turn on the ack/retransmit reliability protocol for every context of
  /// this client (see pami/reliability.hpp).  Call before traffic flows;
  /// both communicating clients must enable it.
  void enable_reliability(const ReliabilityParams& params = {}) {
    reliability_ = params;
    reliable_ = true;
  }
  bool reliable() const noexcept { return reliable_; }
  const ReliabilityParams& reliability() const noexcept {
    return reliability_;
  }

 private:
  net::Fabric& fabric_;
  const EndpointId endpoint_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::array<DispatchFn, kMaxDispatch> dispatch_table_;
  ReliabilityParams reliability_{};
  bool reliable_ = false;
};

}  // namespace bgq::pami
