// PAMI-like active messaging library (§II-B) over the in-process fabric.
//
// The real PAMI (Parallel Active Messaging Interface) is BG/Q's low-level
// messaging layer: a Client per process, multiple Context objects that
// different threads drive concurrently without mutexes, active-message
// sends that fire registered dispatch callbacks on the destination, and
// one-sided rget/rput.  This module reproduces that API shape so the
// Converse machine layer above is the real algorithm from the paper:
//
//   PAMI_Send_immediate -> Context::send_immediate   (single MU descriptor,
//                                                     payload copied inline)
//   PAMI_Send           -> Context::send             (metadata + payload
//                                                     descriptors)
//   PAMI_Rget / Rput    -> Context::rget / rput      (one-sided RDMA)
//   PAMI_Context_advance-> Context::advance          (poll FIFO + work)
//   work queues         -> Context::post_work        (lockless, executed by
//                                                     the advancing thread)
//
// Thread contract (same as PAMI): distinct contexts may be driven by
// distinct threads concurrently with no locks; calls into ONE context must
// be externally serialized.  post_work() is the exception — it is the
// lockless MPSC channel any thread may use to hand work to the thread
// advancing the context.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "net/packet.hpp"
#include "queue/l2_atomic_queue.hpp"
#include "wakeup/wakeup_unit.hpp"

namespace bgq::pami {

class Client;
class Context;

using EndpointId = topo::NodeId;

/// Arguments handed to an active-message dispatch callback.  Pointers are
/// valid only for the duration of the callback (the receiver copies out,
/// exactly as with real PAMI dispatches).
struct DispatchArgs {
  Context* context = nullptr;
  EndpointId origin = 0;
  const std::byte* metadata = nullptr;
  std::size_t metadata_bytes = 0;
  const std::byte* payload = nullptr;
  std::size_t payload_bytes = 0;
};

using DispatchFn = std::function<void(const DispatchArgs&)>;

/// Parameters for send / send_immediate.
struct SendParams {
  EndpointId dest = 0;
  std::uint16_t dispatch = 0;
  /// Which of the destination's contexts (reception FIFOs) to target.
  std::uint16_t dest_context = 0;
  const void* metadata = nullptr;
  std::size_t metadata_bytes = 0;
  const void* payload = nullptr;
  std::size_t payload_bytes = 0;
  /// Invoked once the payload buffer is reusable (both send flavours copy,
  /// so this fires before the call returns — kept for API fidelity).
  std::function<void()> local_done;
};

/// One PAMI context: a reception FIFO, a lockless work queue, and the send
/// machinery.  Created via Client.
class Context {
 public:
  /// PAMI_Send_immediate limit on BG/Q (payload + metadata must fit one
  /// network packet's worth of immediate data).
  static constexpr std::size_t kImmediateMax = 128;

  Context(Client& client, std::uint16_t index);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  std::uint16_t index() const noexcept { return index_; }
  Client& client() noexcept { return client_; }

  /// Short-message send: payload+metadata copied into a single descriptor.
  /// Requires metadata_bytes + payload_bytes <= kImmediateMax.
  void send_immediate(const SendParams& p);

  /// General eager send (two descriptors: metadata, payload).  Any size.
  void send(const SendParams& p);

  /// One-sided RDMA read: pull `bytes` from `remote_src` (registered on
  /// endpoint `remote`) into `local_dst`; `done` runs on this context's
  /// advancing thread when the data has landed.
  void rget(EndpointId remote, const std::byte* remote_src,
            std::byte* local_dst, std::size_t bytes,
            std::function<void()> done);

  /// One-sided RDMA write: push bytes into `remote_dst` on endpoint
  /// `remote`; `remote_done` (optional) runs on the remote context's
  /// advancing thread after the data is visible there.
  void rput(EndpointId remote, std::byte* remote_dst,
            const std::byte* local_src, std::size_t bytes,
            std::uint16_t dest_context = 0,
            std::function<void()> remote_done = {});

  /// Poll this context: deliver arrived packets to dispatch callbacks, run
  /// RDMA completions, execute posted work.  Returns events processed.
  std::size_t advance(std::size_t max_events = SIZE_MAX);

  /// Hand a closure to whichever thread advances this context (lockless
  /// MPSC; wakes the advancing thread if it is parked).
  void post_work(std::function<void()> fn);

  /// True when the FIFO or the work queue has anything pending.
  bool has_pending() const;

  /// The gate the advancing thread parks on (the reception FIFO's gate by
  /// default; the comm-thread pool rebinds it).
  wakeup::WaitGate& gate();

  /// Rebind arrival/work wakeups to `g` (nullptr restores the default).
  void bind_gate(wakeup::WaitGate* g);

  // ---- statistics --------------------------------------------------------
  std::uint64_t sends() const noexcept { return sends_; }
  std::uint64_t immediate_sends() const noexcept { return imm_sends_; }
  std::uint64_t receives() const noexcept { return recvs_; }
  std::uint64_t work_executed() const noexcept { return work_done_; }

 private:
  struct WorkItem {
    std::function<void()> fn;
  };

  net::ReceptionFifo& fifo();
  void process(net::Packet* p);

  Client& client_;
  const std::uint16_t index_;

  queue::L2AtomicQueue<WorkItem*> work_;

  // Stats are written only by the threads owning the respective path; they
  // are plain counters read for reporting.
  std::uint64_t sends_ = 0;
  std::uint64_t imm_sends_ = 0;
  std::uint64_t recvs_ = 0;
  std::uint64_t work_done_ = 0;
};

/// One PAMI client per process (endpoint); owns the contexts and the
/// dispatch table shared by them.
class Client {
 public:
  static constexpr std::size_t kMaxDispatch = 256;

  Client(net::Fabric& fabric, EndpointId endpoint, unsigned ncontexts);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Context& context(unsigned i) { return *contexts_[i]; }
  unsigned context_count() const noexcept {
    return static_cast<unsigned>(contexts_.size());
  }

  EndpointId endpoint() const noexcept { return endpoint_; }
  net::Fabric& fabric() noexcept { return fabric_; }

  /// Register the callback for a dispatch id.  Must happen before traffic
  /// with that id arrives (PAMI_Dispatch_set has the same requirement).
  void set_dispatch(std::uint16_t id, DispatchFn fn);

  const DispatchFn& dispatch(std::uint16_t id) const {
    return dispatch_table_[id];
  }

 private:
  net::Fabric& fabric_;
  const EndpointId endpoint_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::array<DispatchFn, kMaxDispatch> dispatch_table_;
};

}  // namespace bgq::pami
