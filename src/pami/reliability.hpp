// Tuning knobs for the PAMI-layer reliability protocol (seq numbers, acks,
// retransmits) that makes the runtime survive a faulty fabric
// (net/fault.hpp).  Dependency-free so converse/config.hpp can embed it.
//
// Protocol sketch (implemented in pami.cpp):
//   * A *channel* is the pair of directed flows between this context and a
//     peer (endpoint, context).  The sender stamps each mem-FIFO packet
//     with a per-channel sequence number and keeps a copy until acked.
//   * The receiver dedups by a cumulative watermark plus an above-watermark
//     set (Charm++-style delivery needs exactly-once, not in-order), and
//     owes one ack per received seq.  Acks piggyback on reverse-direction
//     data packets or flush as standalone batched ack packets.
//   * Unacked packets retransmit on an exponentially backed-off timer,
//     capped at max_retries; every packet carries an end-to-end checksum so
//     a corrupted delivery is dropped (and later retransmitted) instead of
//     dispatched.
//   * Backpressure: when a channel's retransmit window is full the send is
//     queued in a bounded local backlog drained by advance() — senders
//     never abort and memory stays bounded.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bgq::pami {

struct ReliabilityParams {
  /// Initial retransmit timeout.  The emulated wire is nanoseconds, so the
  /// timer mostly measures scheduling delay of the peer's advance loop.
  std::uint64_t rto_ns = 200'000;

  /// Backoff cap: rto doubles per retry up to this.
  std::uint64_t rto_max_ns = 10'000'000;

  /// Give up (throw) after this many retransmits of one packet.  Bounds
  /// the no-hang guarantee: a partitioned peer surfaces as an error, not
  /// an infinite loop.
  unsigned max_retries = 30;

  /// Per-channel cap on unacked in-flight packets; sends beyond it take
  /// the backpressure backlog.
  std::size_t window = 64;

  /// Bound on the local backpressure backlog (packets).  Exhausting it is
  /// the one hard failure: the application is outrunning the network by
  /// an unbounded amount.
  std::size_t backlog_max = 65536;

  /// Max acks piggybacked on one outgoing data packet.
  std::size_t max_piggyback = 16;

  /// Max acks carried by one standalone ack packet.
  std::size_t max_ack_batch = 64;

  /// Sliding dedup window: a received seq more than this far below the
  /// channel's highest-seen seq is unconditionally treated as a duplicate,
  /// and above-watermark dedup entries that age past the horizon are
  /// evicted (counted as net.dedup.evicted).  Bounds the dedup table on
  /// arbitrarily long chaos runs.  Safe because the sender's retransmit
  /// window caps live unacked seqs at `window` per channel — keep
  /// dedup_horizon >= window (it is, by a wide margin).  0 disables the
  /// horizon (unbounded table, pre-PR-5 behaviour).
  std::size_t dedup_horizon = 4096;
};

}  // namespace bgq::pami
