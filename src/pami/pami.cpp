#include "pami/pami.hpp"

#include <cstring>
#include <stdexcept>

namespace bgq::pami {

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Context::Context(Client& client, std::uint16_t index)
    : client_(client), index_(index), work_(1024) {}

net::ReceptionFifo& Context::fifo() {
  return client_.fabric().reception_fifo(client_.endpoint(), index_);
}

namespace {

void fill_common(net::Packet& pkt, EndpointId src, const SendParams& p) {
  pkt.kind = net::TransferKind::kMemFifo;
  pkt.src = src;
  pkt.dst = p.dest;
  pkt.dispatch = p.dispatch;
  pkt.rec_fifo = p.dest_context;
  if (p.metadata_bytes != 0) {
    pkt.metadata.resize(p.metadata_bytes);
    std::memcpy(pkt.metadata.data(), p.metadata, p.metadata_bytes);
  }
  if (p.payload_bytes != 0) {
    pkt.payload.resize(p.payload_bytes);
    std::memcpy(pkt.payload.data(), p.payload, p.payload_bytes);
  }
}

}  // namespace

void Context::send_immediate(const SendParams& p) {
  if (p.metadata_bytes + p.payload_bytes > kImmediateMax) {
    throw std::invalid_argument("send_immediate: exceeds immediate limit");
  }
  // Single-descriptor path: one packet object, one copy, no completion
  // bookkeeping — minimal overhead, as on hardware.
  auto* pkt = new net::Packet();
  fill_common(*pkt, client_.endpoint(), p);
  client_.fabric().inject(pkt);
  ++imm_sends_;
  if (p.local_done) p.local_done();
}

void Context::send(const SendParams& p) {
  // Two-descriptor path (metadata + payload).  The payload is copied, so
  // the local completion fires immediately; on hardware it fires when the
  // MU has drained the descriptors, which the dispatcher above us cannot
  // distinguish.
  auto* pkt = new net::Packet();
  fill_common(*pkt, client_.endpoint(), p);
  client_.fabric().inject(pkt);
  ++sends_;
  if (p.local_done) p.local_done();
}

void Context::rget(EndpointId remote, const std::byte* remote_src,
                   std::byte* local_dst, std::size_t bytes,
                   std::function<void()> done) {
  auto* pkt = new net::Packet();
  pkt->kind = net::TransferKind::kRdmaRead;
  pkt->src = remote;                 // where the data lives
  pkt->dst = client_.endpoint();     // completion lands back here
  pkt->rec_fifo = index_;
  pkt->rdma_src = remote_src;
  pkt->rdma_dst = local_dst;
  pkt->rdma_bytes = bytes;
  pkt->on_delivered = std::move(done);
  client_.fabric().inject(pkt);
  ++sends_;
}

void Context::rput(EndpointId remote, std::byte* remote_dst,
                   const std::byte* local_src, std::size_t bytes,
                   std::uint16_t dest_context,
                   std::function<void()> remote_done) {
  auto* pkt = new net::Packet();
  pkt->kind = net::TransferKind::kRdmaWrite;
  pkt->src = client_.endpoint();
  pkt->dst = remote;
  pkt->rec_fifo = dest_context;
  pkt->rdma_src = local_src;
  pkt->rdma_dst = remote_dst;
  pkt->rdma_bytes = bytes;
  pkt->on_delivered = std::move(remote_done);
  client_.fabric().inject(pkt);
  ++sends_;
}

void Context::process(net::Packet* p) {
  if (p->kind == net::TransferKind::kMemFifo) {
    const DispatchFn& fn = client_.dispatch(p->dispatch);
    if (!fn) {
      delete p;
      throw std::logic_error("packet for unregistered dispatch id");
    }
    DispatchArgs args;
    args.context = this;
    args.origin = p->src;
    args.metadata = p->metadata.data();
    args.metadata_bytes = p->metadata.size();
    args.payload = p->payload.data();
    args.payload_bytes = p->payload.size();
    fn(args);
  } else {
    // RDMA completion notification: the copy already happened at inject.
    if (p->on_delivered) p->on_delivered();
  }
  ++recvs_;
  delete p;
}

std::size_t Context::advance(std::size_t max_events) {
  std::size_t events = 0;
  while (events < max_events) {
    if (net::Packet* p = fifo().poll()) {
      process(p);
      ++events;
      continue;
    }
    if (WorkItem* w = work_.try_dequeue()) {
      w->fn();
      delete w;
      ++work_done_;
      ++events;
      continue;
    }
    break;
  }
  return events;
}

void Context::post_work(std::function<void()> fn) {
  work_.enqueue(new WorkItem{std::move(fn)});
  // Same gate as packet arrivals: the advancing thread parks in one place.
  fifo().gate().wake();
}

bool Context::has_pending() const {
  auto& self = const_cast<Context&>(*this);
  return !self.fifo().empty() || !self.work_.empty();
}

wakeup::WaitGate& Context::gate() { return fifo().gate(); }

void Context::bind_gate(wakeup::WaitGate* g) { fifo().bind_gate(g); }

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(net::Fabric& fabric, EndpointId endpoint, unsigned ncontexts)
    : fabric_(fabric), endpoint_(endpoint) {
  if (ncontexts == 0 || ncontexts > fabric.rec_fifos_per_node()) {
    throw std::invalid_argument(
        "context count must be in [1, reception FIFOs per endpoint]");
  }
  contexts_.reserve(ncontexts);
  for (unsigned i = 0; i < ncontexts; ++i) {
    contexts_.push_back(
        std::make_unique<Context>(*this, static_cast<std::uint16_t>(i)));
  }
}

void Client::set_dispatch(std::uint16_t id, DispatchFn fn) {
  if (id >= kMaxDispatch) throw std::invalid_argument("dispatch id too big");
  dispatch_table_[id] = std::move(fn);
}

}  // namespace bgq::pami
