#include "pami/pami.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/timing.hpp"
#include "trace/session.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::pami {

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Context::Context(Client& client, std::uint16_t index)
    : client_(client), index_(index), work_(1024) {}

Context::~Context() {
  for (auto& [key, ch] : chans_) {
    for (auto& pend : ch.pending) delete pend.copy;
  }
  for (net::Packet* p : backlog_) delete p;
  // A killed process's contexts die with posted work still queued (the
  // monitor may have raced a heartbeat post against the kill).
  while (WorkItem* w = work_.try_dequeue()) delete w;
}

net::ReceptionFifo& Context::fifo() {
  return client_.fabric().reception_fifo(client_.endpoint(), index_);
}

namespace {

void fill_common(net::Packet& pkt, EndpointId src, const SendParams& p) {
  pkt.kind = net::TransferKind::kMemFifo;
  pkt.src = src;
  pkt.dst = p.dest;
  pkt.dispatch = p.dispatch;
  pkt.rec_fifo = p.dest_context;
  pkt.cid = p.cid;
  if (p.metadata_bytes != 0) {
    pkt.metadata.resize(p.metadata_bytes);
    std::memcpy(pkt.metadata.data(), p.metadata, p.metadata_bytes);
  }
  if (p.payload_bytes != 0) {
    pkt.payload.resize(p.payload_bytes);
    std::memcpy(pkt.payload.data(), p.payload, p.payload_bytes);
  }
}

}  // namespace

void Context::send_immediate(const SendParams& p) {
  if (p.metadata_bytes + p.payload_bytes > kImmediateMax) {
    throw std::invalid_argument("send_immediate: exceeds immediate limit");
  }
  // Single-descriptor path: one packet object, one copy, no completion
  // bookkeeping — minimal overhead, as on hardware.
  auto* pkt = new net::Packet();
  fill_common(*pkt, client_.endpoint(), p);
  if (client_.reliable() && !p.best_effort) {
    reliable_submit(pkt);
  } else {
    if (pkt->cid != 0) {
      trace::emit_here(trace::EventKind::kNetInject,
                       static_cast<std::uint32_t>(pkt->dst), pkt->cid);
    }
    client_.fabric().inject(pkt);
  }
  ++imm_sends_;
  if (p.local_done) p.local_done();
}

void Context::send(const SendParams& p) {
  // Two-descriptor path (metadata + payload).  The payload is copied, so
  // the local completion fires immediately; on hardware it fires when the
  // MU has drained the descriptors, which the dispatcher above us cannot
  // distinguish.
  auto* pkt = new net::Packet();
  fill_common(*pkt, client_.endpoint(), p);
  if (client_.reliable() && !p.best_effort) {
    reliable_submit(pkt);
  } else {
    if (pkt->cid != 0) {
      trace::emit_here(trace::EventKind::kNetInject,
                       static_cast<std::uint32_t>(pkt->dst), pkt->cid);
    }
    client_.fabric().inject(pkt);
  }
  ++sends_;
  if (p.local_done) p.local_done();
}

void Context::rget(EndpointId remote, const std::byte* remote_src,
                   std::byte* local_dst, std::size_t bytes,
                   std::function<void()> done) {
  auto* pkt = new net::Packet();
  pkt->kind = net::TransferKind::kRdmaRead;
  pkt->src = remote;                 // where the data lives
  pkt->dst = client_.endpoint();     // completion lands back here
  pkt->rec_fifo = index_;
  pkt->rdma_src = remote_src;
  pkt->rdma_dst = local_dst;
  pkt->rdma_bytes = bytes;
  pkt->on_delivered = std::move(done);
  client_.fabric().inject(pkt);
  ++sends_;
}

void Context::rput(EndpointId remote, std::byte* remote_dst,
                   const std::byte* local_src, std::size_t bytes,
                   std::uint16_t dest_context,
                   std::function<void()> remote_done) {
  auto* pkt = new net::Packet();
  pkt->kind = net::TransferKind::kRdmaWrite;
  pkt->src = client_.endpoint();
  pkt->dst = remote;
  pkt->rec_fifo = dest_context;
  pkt->rdma_src = local_src;
  pkt->rdma_dst = remote_dst;
  pkt->rdma_bytes = bytes;
  pkt->on_delivered = std::move(remote_done);
  client_.fabric().inject(pkt);
  ++sends_;
}

void Context::process(net::Packet* p) {
  if (p->kind == net::TransferKind::kMemFifo) {
    // Sequenced / ack packets first pass through the reliability layer,
    // which consumes (and frees) corrupted, duplicate, and pure-ack
    // packets; only fresh data falls through to dispatch.
    if (p->flags != 0 && !reliable_receive(p)) return;
    // Exactly-once per delivered message even under retransmit: duplicates
    // were filtered above, so this is the dispatch hop of the lifecycle.
    if (p->cid != 0) {
      trace::emit_here(trace::EventKind::kMsgRecv,
                       static_cast<std::uint32_t>(p->src), p->cid);
    }
    const DispatchFn& fn = client_.dispatch(p->dispatch);
    if (!fn) {
      delete p;
      throw std::logic_error("packet for unregistered dispatch id");
    }
    DispatchArgs args;
    args.context = this;
    args.origin = p->src;
    args.metadata = p->metadata.data();
    args.metadata_bytes = p->metadata.size();
    args.payload = p->payload.data();
    args.payload_bytes = p->payload.size();
    fn(args);
  } else {
    // RDMA completion notification: the copy already happened at inject.
    if (p->on_delivered) p->on_delivered();
  }
  ++recvs_;
  delete p;
}

std::size_t Context::advance(std::size_t max_events) {
  std::size_t events = 0;
  while (events < max_events) {
    if (net::Packet* p = fifo().poll()) {
      process(p);
      ++events;
      continue;
    }
    if (WorkItem* w = work_.try_dequeue()) {
      w->fn();
      delete w;
      ++work_done_;
      ++events;
      continue;
    }
    break;
  }
  // Timers and queues of the reliability layer: drain the backpressure
  // backlog, retransmit expired packets, flush owed acks.  A no-op (and
  // zero added events) unless the client enabled reliability.
  events += reliability_tick();
  return events;
}

// ---------------------------------------------------------------------------
// Context: reliability protocol (see pami/reliability.hpp for the sketch).
// All of this runs on the context's advancing thread — the PAMI thread
// contract already serializes it, so no locks.
// ---------------------------------------------------------------------------

Context::Channel& Context::channel(EndpointId ep, std::uint16_t ctx) {
  return chans_[(static_cast<std::uint64_t>(ep) << 16) | ctx];
}

void Context::reliable_submit(net::Packet* pkt) {
  pkt->flags |= net::kPktReliable;
  pkt->src_ctx = index_;
  Channel& ch = channel(pkt->dst, pkt->rec_fifo);
  const ReliabilityParams& rp = client_.reliability();
  // Backpressure: a full retransmit window (or an already-backed-up
  // backlog — keep submission order) queues the send locally instead of
  // overrunning the peer.  advance() drains as acks free window slots.
  if (!backlog_.empty() || ch.pending.size() >= rp.window) {
    if (backlog_.size() >= rp.backlog_max) {
      delete pkt;
      throw std::runtime_error(
          "pami reliability: backpressure backlog overflow "
          "(application is outrunning the network)");
    }
    if (pkt->cid != 0) {
      trace::emit_here(trace::EventKind::kNetBacklog,
                       static_cast<std::uint32_t>(pkt->dst), pkt->cid);
    }
    backlog_.push_back(pkt);
    backlog_count_.fetch_add(1, std::memory_order_relaxed);
    ++stalls_;
    return;
  }
  transmit(ch, pkt);
}

void Context::transmit(Channel& ch, net::Packet* pkt) {
  const ReliabilityParams& rp = client_.reliability();
  pkt->seq = ch.next_seq++;
  // Piggyback acks owed to this same peer on the outgoing data packet.
  const std::size_t take = std::min(rp.max_piggyback, ch.owed_acks.size());
  if (take != 0) {
    pkt->acks.assign(ch.owed_acks.end() - static_cast<std::ptrdiff_t>(take),
                     ch.owed_acks.end());
    ch.owed_acks.resize(ch.owed_acks.size() - take);
    owed_total_ -= take;
    acks_piggy_ += take;
  }
  pkt->checksum = net::packet_checksum(*pkt);
  // The retransmit buffer keeps a private copy: the fabric owns (and may
  // corrupt, drop, or free) the injected original.
  auto* copy = new net::Packet(*pkt);
  ch.pending.push_back(
      Pending{pkt->seq, copy, now_ns() + rp.rto_ns, rp.rto_ns, 0});
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  BGQ_SCHED_POINT("pami.rel.transmit");
  if (pkt->cid != 0) {
    trace::emit_here(trace::EventKind::kNetInject,
                     static_cast<std::uint32_t>(pkt->dst), pkt->cid);
  }
  client_.fabric().inject(pkt);
}

void Context::ack_one(Channel& ch, std::uint64_t seq) {
  for (std::size_t i = 0; i < ch.pending.size(); ++i) {
    if (ch.pending[i].seq == seq) {
      delete ch.pending[i].copy;
      ch.pending.erase(ch.pending.begin() + static_cast<std::ptrdiff_t>(i));
      outstanding_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
  ++dup_acks_;  // already acked (first ack raced a retransmit)
}

bool Context::reliable_receive(net::Packet* p) {
  BGQ_SCHED_POINT("pami.rel.recv");
  // Corruption: drop silently — no ack, so the sender's retransmit
  // recovers the clean copy.
  if (net::packet_checksum(*p) != p->checksum) {
    ++corrupt_;
    delete p;
    return false;
  }
  Channel& ch = channel(p->src, p->src_ctx);
  for (const std::uint64_t a : p->acks) ack_one(ch, a);
  if ((p->flags & net::kPktAck) != 0) {
    delete p;  // pure ack: no dispatch, no receive count
    return false;
  }
  // Dedup: an already-delivered seq is re-acked (the first ack may have
  // been lost) but never re-dispatched — exactly-once delivery.  The
  // sliding horizon bounds the above-watermark table: a seq that far
  // behind max_seen cannot be live (the sender's window caps unacked
  // seqs at `window` << horizon), so it must be an ancient duplicate
  // whose table entry may already have been evicted.
  const ReliabilityParams& rrp = client_.reliability();
  const std::uint64_t seq = p->seq;
  const bool below_horizon =
      rrp.dedup_horizon != 0 && seq + rrp.dedup_horizon <= ch.max_seen;
  const bool seen =
      below_horizon || seq <= ch.recv_cum ||
      std::find(ch.recv_above.begin(), ch.recv_above.end(), seq) !=
          ch.recv_above.end();
  if (seen) {
    ++dedup_;
    ch.owed_acks.push_back(seq);
    ++owed_total_;
    delete p;
    return false;
  }
  // Mark delivered: advance the cumulative watermark, absorbing any
  // contiguous run parked above it (reordered arrivals).
  if (seq == ch.recv_cum + 1) {
    ++ch.recv_cum;
    bool advanced = true;
    while (advanced && !ch.recv_above.empty()) {
      advanced = false;
      for (std::size_t i = 0; i < ch.recv_above.size(); ++i) {
        if (ch.recv_above[i] == ch.recv_cum + 1) {
          ++ch.recv_cum;
          ch.recv_above[i] = ch.recv_above.back();
          ch.recv_above.pop_back();
          advanced = true;
          break;
        }
      }
    }
  } else {
    ch.recv_above.push_back(seq);
  }
  if (seq > ch.max_seen) ch.max_seen = seq;
  // Age out above-watermark entries that fell below the horizon: any
  // future duplicate of them is caught by the below_horizon test above,
  // so the table stays bounded without losing exactly-once.
  if (rrp.dedup_horizon != 0 && ch.max_seen > rrp.dedup_horizon) {
    const std::uint64_t floor = ch.max_seen - rrp.dedup_horizon;
    for (std::size_t i = 0; i < ch.recv_above.size();) {
      if (ch.recv_above[i] <= floor) {
        ch.recv_above[i] = ch.recv_above.back();
        ch.recv_above.pop_back();
        ++dedup_evicted_;
      } else {
        ++i;
      }
    }
  }
  ch.owed_acks.push_back(seq);
  ++owed_total_;
  return true;  // fresh data: caller dispatches it
}

std::size_t Context::reliability_tick() {
  if (!client_.reliable()) return 0;
  const ReliabilityParams& rp = client_.reliability();
  std::size_t activity = 0;

  // Drain the backpressure backlog while windows have room (FIFO order:
  // the head blocking keeps submission order per channel).  Sends bound
  // for a peer that died since submission are culled, not transmitted.
  while (!backlog_.empty()) {
    net::Packet* pkt = backlog_.front();
    if (client_.fabric().endpoint_dead(pkt->dst)) {
      backlog_.pop_front();
      backlog_count_.fetch_sub(1, std::memory_order_relaxed);
      delete pkt;
      ++dead_drops_;
      ++activity;
      continue;
    }
    Channel& ch = channel(pkt->dst, pkt->rec_fifo);
    if (ch.pending.size() >= rp.window) break;
    backlog_.pop_front();
    backlog_count_.fetch_sub(1, std::memory_order_relaxed);
    transmit(ch, pkt);
    ++activity;
  }

  // Retransmit expired unacked packets with exponential backoff.  An
  // expired packet whose peer is dead will never be acked: cull it (the
  // FT layer rolls the message back by epoch) rather than burning
  // retries into a blackhole and throwing.
  if (outstanding_.load(std::memory_order_relaxed) != 0) {
    const std::uint64_t now = now_ns();
    for (auto& [key, ch] : chans_) {
      for (std::size_t i = 0; i < ch.pending.size();) {
        Pending& pend = ch.pending[i];
        if (pend.deadline_ns > now) {
          ++i;
          continue;
        }
        if (client_.fabric().endpoint_dead(pend.copy->dst)) {
          delete pend.copy;
          ch.pending.erase(ch.pending.begin() +
                           static_cast<std::ptrdiff_t>(i));
          outstanding_.fetch_sub(1, std::memory_order_relaxed);
          ++dead_drops_;
          ++activity;
          continue;
        }
        if (++pend.tries > rp.max_retries) {
          throw std::runtime_error(
              "pami reliability: retransmit retries exhausted (seq " +
              std::to_string(pend.seq) + "; peer unreachable?)");
        }
        pend.rto_ns = std::min(pend.rto_ns * 2, rp.rto_max_ns);
        pend.deadline_ns = now + pend.rto_ns;
        BGQ_SCHED_POINT("pami.rel.retransmit");
        if (pend.copy->cid != 0) {
          trace::emit_here(trace::EventKind::kNetRetransmit,
                           static_cast<std::uint32_t>(pend.copy->dst),
                           pend.copy->cid);
        }
        client_.fabric().inject(new net::Packet(*pend.copy));
        retransmits_.fetch_add(1, std::memory_order_relaxed);
        ++activity;
        ++i;
      }
    }
  }

  // Flush acks that found no data packet to piggyback on as standalone
  // batched ack packets (unsequenced: a lost ack is re-owed on dedup).
  if (owed_total_ != 0) {
    for (auto& [key, ch] : chans_) {
      while (!ch.owed_acks.empty()) {
        const std::size_t take =
            std::min(rp.max_ack_batch, ch.owed_acks.size());
        auto* ack = new net::Packet();
        ack->kind = net::TransferKind::kMemFifo;
        ack->src = client_.endpoint();
        ack->dst = static_cast<EndpointId>(key >> 16);
        ack->rec_fifo = static_cast<std::uint16_t>(key & 0xFFFF);
        ack->flags = net::kPktAck;
        ack->src_ctx = index_;
        ack->acks.assign(
            ch.owed_acks.end() - static_cast<std::ptrdiff_t>(take),
            ch.owed_acks.end());
        ch.owed_acks.resize(ch.owed_acks.size() - take);
        owed_total_ -= take;
        acks_alone_ += take;
        ack->checksum = net::packet_checksum(*ack);
        BGQ_SCHED_POINT("pami.rel.ackflush");
        client_.fabric().inject(ack);
        ++activity;
      }
    }
  }
  return activity;
}

void Context::post_work(std::function<void()> fn) {
  work_.enqueue(new WorkItem{std::move(fn)});
  // Same gate as packet arrivals: the advancing thread parks in one place.
  fifo().gate().wake();
}

bool Context::has_pending() const {
  auto& self = const_cast<Context&>(*this);
  return !self.fifo().empty() || !self.work_.empty();
}

wakeup::WaitGate& Context::gate() { return fifo().gate(); }

void Context::bind_gate(wakeup::WaitGate* g) { fifo().bind_gate(g); }

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(net::Fabric& fabric, EndpointId endpoint, unsigned ncontexts)
    : fabric_(fabric), endpoint_(endpoint) {
  if (ncontexts == 0 || ncontexts > fabric.rec_fifos_per_node()) {
    throw std::invalid_argument(
        "context count must be in [1, reception FIFOs per endpoint]");
  }
  contexts_.reserve(ncontexts);
  for (unsigned i = 0; i < ncontexts; ++i) {
    contexts_.push_back(
        std::make_unique<Context>(*this, static_cast<std::uint16_t>(i)));
  }
}

void Client::set_dispatch(std::uint16_t id, DispatchFn fn) {
  if (id >= kMaxDispatch) throw std::invalid_argument("dispatch id too big");
  dispatch_table_[id] = std::move(fn);
}

}  // namespace bgq::pami
