// Communication threads (paper §III-C).
//
// "To accelerate the message rate and communication processing we enabled
//  communication threads in the PAMI library.  These threads take advantage
//  of the wakeup unit ... to eliminate overheads when the communication
//  thread is idle.  Typically, a communication thread is enabled for four
//  worker threads. ... The communication load from each worker thread is
//  evenly distributed across all the communication threads."
//
// A CommThreadPool owns N host threads; each advances a fixed subset of
// PAMI contexts.  All FIFO/work wakeups of those contexts are rebound to
// the servicing thread's WaitGate, so an idle comm thread parks (emulated
// `wait` instruction) and is woken by packet arrival or posted work
// (emulated wakeup-unit interrupt).  Worker-to-comm-thread load spreading
// is the caller's choice of which context each message goes through; the
// helper route() implements the paper's even distribution.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "pami/pami.hpp"
#include "wakeup/wakeup_unit.hpp"

namespace bgq::pami {

class CommThreadPool {
 public:
  /// Starts `nthreads` comm threads servicing `contexts`, partitioned
  /// round-robin (context i -> thread i % nthreads).  `thread_init`, if
  /// set, runs first on each comm thread (the runtime above uses it to
  /// assign allocator thread slots).
  CommThreadPool(std::vector<Context*> contexts, unsigned nthreads,
                 std::function<void(unsigned)> thread_init = {});
  ~CommThreadPool();

  CommThreadPool(const CommThreadPool&) = delete;
  CommThreadPool& operator=(const CommThreadPool&) = delete;

  /// Stop and join all threads (idempotent).
  void stop();

  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Even worker->context distribution (paper §III-C): worker `w` of
  /// `nworkers` sends message number `seq` through this context index.
  /// Spreading over *all* contexts (not a fixed one per worker) is what
  /// lets several comm threads absorb a bursty worker.
  static unsigned route(unsigned worker, std::uint64_t seq,
                        unsigned ncontexts) {
    return static_cast<unsigned>((worker + seq) % ncontexts);
  }

  // ---- statistics --------------------------------------------------------
  std::uint64_t sweeps() const noexcept {
    return sweeps_.load(std::memory_order_relaxed);
  }
  std::uint64_t parks() const noexcept {
    return parks_.load(std::memory_order_relaxed);
  }

 private:
  void run(unsigned tid);

  std::vector<Context*> contexts_;
  std::function<void(unsigned)> thread_init_;
  std::vector<std::unique_ptr<wakeup::WaitGate>> gates_;  // one per thread
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> parks_{0};
};

}  // namespace bgq::pami
