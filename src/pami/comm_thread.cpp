#include "pami/comm_thread.hpp"

#include <stdexcept>

#include "trace/trace.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::pami {

CommThreadPool::CommThreadPool(std::vector<Context*> contexts,
                               unsigned nthreads,
                               std::function<void(unsigned)> thread_init)
    : contexts_(std::move(contexts)), thread_init_(std::move(thread_init)) {
  if (nthreads == 0) throw std::invalid_argument("need >= 1 comm thread");
  if (contexts_.empty()) throw std::invalid_argument("no contexts to serve");

  gates_.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) {
    gates_.push_back(std::make_unique<wakeup::WaitGate>());
  }
  // Bind every context's wakeups to its servicing thread's gate before any
  // thread starts polling.
  for (std::size_t c = 0; c < contexts_.size(); ++c) {
    contexts_[c]->bind_gate(gates_[c % nthreads].get());
  }
  threads_.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) {
    threads_.emplace_back([this, t] { run(t); });
  }
}

CommThreadPool::~CommThreadPool() { stop(); }

void CommThreadPool::stop() {
  if (stop_.exchange(true)) {
    // Already stopped; just make sure joins happened.
  }
  for (auto& g : gates_) g->wake();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  // Restore default gates so the contexts remain usable without the pool.
  for (Context* c : contexts_) c->bind_gate(nullptr);
}

namespace {
// Park deadline while reliability timers are armed — half the default
// initial RTO, so a retransmit is at most one park late.
constexpr std::uint64_t kTimerParkNs = 100'000;
}  // namespace

void CommThreadPool::run(unsigned tid) {
  if (thread_init_) thread_init_(tid);
  wakeup::WaitGate& gate = *gates_[tid];
  const unsigned nthreads = static_cast<unsigned>(gates_.size());

  // The contexts this thread owns.
  std::vector<Context*> mine;
  for (std::size_t c = tid; c < contexts_.size(); c += nthreads) {
    mine.push_back(contexts_[c]);
  }

  while (!stop_.load(std::memory_order_acquire)) {
    BGQ_SCHED_POINT("comm.poll.sweep");
    std::size_t events = 0;
    for (Context* c : mine) events += c->advance();
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    if (events != 0) {
      BGQ_TRACE_EVENT(::bgq::trace::EventKind::kCommAdvance, events);
      continue;
    }

    // Idle: park on the wakeup gate (emulated `wait` instruction).  The
    // prepare/re-check/commit dance closes the race against a packet that
    // arrives between the last poll and the park.
    const auto seen = gate.prepare_wait();
    BGQ_SCHED_POINT("comm.park.recheck");
    bool pending = stop_.load(std::memory_order_acquire);
    for (Context* c : mine) pending = pending || c->has_pending();
    if (pending) {
      gate.cancel_wait();
      continue;
    }
    parks_.fetch_add(1, std::memory_order_relaxed);
    BGQ_TRACE_EVENT(::bgq::trace::EventKind::kParkBegin, tid);
    // With reliability timers armed (unacked packets / a backpressure
    // backlog on a context we advance) the park must have a deadline: a
    // lost ack never produces a wake(), only a retransmit timeout.
    bool timers = false;
    for (Context* c : mine) timers = timers || c->has_timers();
    if (timers) {
      gate.commit_wait_for(seen, kTimerParkNs);
    } else {
      gate.commit_wait(seen);
    }
    BGQ_TRACE_EVENT(::bgq::trace::EventKind::kParkEnd, tid);
  }
}

}  // namespace bgq::pami
