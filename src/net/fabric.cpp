#include "net/fabric.hpp"

#include <cstring>
#include <stdexcept>

namespace bgq::net {

Fabric::Fabric(const topo::Torus& torus, NetworkParams params,
               unsigned rec_fifos_per_endpoint, unsigned endpoints_per_node)
    : torus_(torus),
      params_(params),
      fifos_per_node_(rec_fifos_per_endpoint),
      endpoints_per_node_(endpoints_per_node) {
  if (rec_fifos_per_endpoint == 0) {
    throw std::invalid_argument("need at least one reception FIFO per node");
  }
  if (endpoints_per_node == 0) {
    throw std::invalid_argument("need at least one endpoint per node");
  }
  fifos_.reserve(endpoint_count() * fifos_per_node_);
  for (std::size_t i = 0; i < endpoint_count() * fifos_per_node_; ++i) {
    fifos_.push_back(std::make_unique<ReceptionFifo>());
  }
}

Fabric::~Fabric() {
  // Drain any undelivered packets so leak checkers stay clean.
  for (auto& f : fifos_) {
    while (Packet* p = f->poll()) delete p;
  }
}

ReceptionFifo& Fabric::reception_fifo(topo::NodeId node, unsigned fifo) {
  return *fifos_[static_cast<std::size_t>(node) * fifos_per_node_ +
                 (fifo % fifos_per_node_)];
}

void Fabric::inject(Packet* p) {
  const int hops = torus_.hops(node_of(p->src), node_of(p->dst));
  const std::size_t bytes = p->payload_bytes() + p->metadata.size();
  p->num_packets = params_.packets_for(bytes);
  p->wire_ns = params_.wire_time_ns(bytes, hops);
  if (p->kind == TransferKind::kRdmaRead) {
    // rget pays the request round trip before data flows back.
    p->wire_ns += params_.rdma_setup_ns +
                  params_.wire_time_ns(0, hops);
  }

  transfers_.fetch_add(1, std::memory_order_relaxed);
  net_packets_.fetch_add(p->num_packets, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);

  switch (p->kind) {
    case TransferKind::kMemFifo:
      reception_fifo(p->dst, p->rec_fifo).deliver(p);
      break;
    case TransferKind::kRdmaRead:
    case TransferKind::kRdmaWrite:
      // Same address space: perform the MU's DMA copy here, then deliver
      // the completion notification to the destination FIFO.
      if (p->rdma_bytes != 0) {
        std::memcpy(p->rdma_dst, p->rdma_src, p->rdma_bytes);
      }
      reception_fifo(p->dst, p->rec_fifo).deliver(p);
      break;
  }
}

}  // namespace bgq::net
