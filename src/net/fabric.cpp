#include "net/fabric.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "common/timing.hpp"
#include "trace/session.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::net {

/// Chaos-layer state.  All fault decisions are serialized on `mu` so the
/// seeded PRNG stream — and therefore the whole fault schedule — is a
/// deterministic function of the injection order.
struct Fabric::FaultState {
  struct Delayed {
    Packet* p = nullptr;
    unsigned ttl = 0;  ///< matures when this many injects have passed
  };

  explicit FaultState(const FaultPlan& pl) : plan(pl), rng(pl.seed) {}

  FaultPlan plan;
  Xoshiro256 rng;
  std::vector<Delayed> delayed;
  std::mutex mu;
};

Fabric::Fabric(const topo::Torus& torus, NetworkParams params,
               unsigned rec_fifos_per_endpoint, unsigned endpoints_per_node,
               std::size_t fifo_capacity, transport::Transport* transport)
    : torus_(torus),
      params_(params),
      fifos_per_node_(rec_fifos_per_endpoint),
      endpoints_per_node_(endpoints_per_node) {
  if (rec_fifos_per_endpoint == 0) {
    throw std::invalid_argument("need at least one reception FIFO per node");
  }
  if (endpoints_per_node == 0) {
    throw std::invalid_argument("need at least one endpoint per node");
  }
  if (fifo_capacity == 0) {
    throw std::invalid_argument("reception FIFO capacity must be > 0");
  }
  fifos_.reserve(endpoint_count() * fifos_per_node_);
  for (std::size_t i = 0; i < endpoint_count() * fifos_per_node_; ++i) {
    fifos_.push_back(std::make_unique<ReceptionFifo>(fifo_capacity));
  }
  if (transport != nullptr) {
    if (transport->endpoint_count() != endpoint_count()) {
      throw std::invalid_argument(
          "transport endpoint count does not match the fabric's");
    }
    transport_ = transport;
  } else {
    owned_transport_ =
        std::make_unique<bgq::transport::InProcTransport>(endpoint_count());
    transport_ = owned_transport_.get();
  }
  transport_->set_sink(this);
}

Fabric::~Fabric() {
  // Drain any undelivered packets so leak checkers stay clean — including
  // delayed packets the chaos layer was still holding.
  if (faults_ != nullptr) {
    for (auto& d : faults_->delayed) delete d.p;
    faults_->delayed.clear();
  }
  for (auto& f : fifos_) {
    while (Packet* p = f->poll()) delete p;
  }
}

ReceptionFifo& Fabric::reception_fifo(topo::NodeId node, unsigned fifo) {
  return *fifos_[static_cast<std::size_t>(node) * fifos_per_node_ +
                 (fifo % fifos_per_node_)];
}

void Fabric::set_fault_plan(const FaultPlan& plan) {
  faults_ = plan.enabled() ? std::make_unique<FaultState>(plan) : nullptr;
}

std::uint64_t Fabric::fifo_spills() const noexcept {
  std::uint64_t total = 0;
  for (const auto& f : fifos_) total += f->spills();
  return total;
}

void Fabric::inject(Packet* p) {
  // A dead endpoint neither emits nor absorbs traffic: transfers touching
  // one vanish before any accounting, exactly like a powered-off node's
  // NIC.  (Retransmits to a dead peer are culled separately at the PAMI
  // layer once the sender learns of the death.)
  if (transport_->endpoint_dead(p->src) ||
      transport_->endpoint_dead(p->dst)) {
    transport_->note_blackholed();
    delete p;
    return;
  }
  if (transport_->liveness_enabled()) {
    transport_->touch_liveness(p->src, now_ns());
  }

  const int hops = torus_.hops(node_of(p->src), node_of(p->dst));
  const std::size_t bytes = p->payload_bytes() + p->metadata.size();
  p->num_packets = params_.packets_for(bytes);
  p->wire_ns = params_.wire_time_ns(bytes, hops);
  if (p->kind == TransferKind::kRdmaRead) {
    // rget pays the request round trip before data flows back.
    p->wire_ns += params_.rdma_setup_ns +
                  params_.wire_time_ns(0, hops);
  }

  transfers_.fetch_add(1, std::memory_order_relaxed);
  net_packets_.fetch_add(p->num_packets, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);

  if (faults_ != nullptr) {
    inject_faulty(p);
  } else {
    deliver_packet(p);
  }
}

void Fabric::deliver_packet(Packet* p) {
  switch (p->kind) {
    case TransferKind::kMemFifo:
      if (!transport_->endpoint_local(p->dst)) {
        // The destination endpoint lives in another OS process: the
        // chaos layer has already rolled its dice above, so the
        // transport hop models a lossless wire (its own reliability is
        // the kernel's / the ring's).
        transport_->inject(p);
        break;
      }
      fifo_handoff(p);
      break;
    case TransferKind::kRdmaRead:
    case TransferKind::kRdmaWrite:
      // Same address space: perform the MU's DMA copy here, then deliver
      // the completion notification to the destination FIFO.  The machine
      // layer forces the eager protocol for remote-process destinations,
      // so RDMA kinds never reach the transport.
      if (p->rdma_bytes != 0) {
        std::memcpy(p->rdma_dst, p->rdma_src, p->rdma_bytes);
      }
      if (p->cid != 0) {
        trace::emit_here(trace::EventKind::kNetDeliver,
                         static_cast<std::uint32_t>(p->dst), p->cid);
      }
      reception_fifo(p->dst, p->rec_fifo).deliver(p);
      break;
  }
}

void Fabric::fifo_handoff(Packet* p) {
  ReceptionFifo& fifo = reception_fifo(p->dst, p->rec_fifo);
  // Read the trace fields before publishing: deliver() hands the
  // packet to the receiver, which may free it before we return.
  const std::uint64_t cid = p->cid;
  const std::uint32_t dst = static_cast<std::uint32_t>(p->dst);
  if (faults_ != nullptr && faults_->plan.reject_on_full) {
    // Overload mode: a full FIFO refuses the packet outright.  The
    // sender's reliability layer sees the missing ack and retransmits
    // — refusal becomes backpressure, not loss.
    if (!fifo.try_deliver(p)) {
      rejects_.fetch_add(1, std::memory_order_relaxed);
      delete p;
      return;
    }
  } else {
    fifo.deliver(p);
  }
  if (cid != 0) {
    trace::emit_here(trace::EventKind::kNetDeliver, dst, cid);
  }
}

void Fabric::deliver_remote(Packet* p) {
  // Receive side of a cross-process transfer.  The sender's fabric did
  // the dead-check against *its* view; re-check against ours so a frame
  // already in flight when the death was declared locally is swallowed
  // exactly like an in-process transfer would have been.
  if (transport_->endpoint_dead(p->src) ||
      transport_->endpoint_dead(p->dst)) {
    transport_->note_blackholed();
    delete p;
    return;
  }
  if (transport_->liveness_enabled()) {
    transport_->touch_liveness(p->src, now_ns());
  }
  fifo_handoff(p);
}

void Fabric::inject_faulty(Packet* p) {
  FaultState& fs = *faults_;

  // Decisions under the lock; deliveries outside it (delivery can contend
  // on the destination FIFO's overflow mutex or wake a sleeping thread).
  std::vector<Packet*> deliver_now;
  Packet* dup = nullptr;

  BGQ_SCHED_BLOCK_BEGIN();
  {
    std::lock_guard<std::mutex> lock(fs.mu);

    // Every inject ages the held-back packets; matured ones re-enter
    // delivery *after* the current packet, which is the reordering.
    for (std::size_t i = 0; i < fs.delayed.size();) {
      if (--fs.delayed[i].ttl == 0) {
        deliver_now.push_back(fs.delayed[i].p);
        fs.delayed[i] = fs.delayed.back();
        fs.delayed.pop_back();
      } else {
        ++i;
      }
    }

    // Faults touch mem-FIFO transfers only (see net/fault.hpp): the RDMA
    // kinds model the MU's DMA engine, which the runtime trusts.
    if (p != nullptr && p->kind == TransferKind::kMemFifo) {
      const FaultPlan& plan = fs.plan;
      if (plan.bitflip > 0.0 && fs.rng.uniform() < plan.bitflip) {
        // Flip one bit somewhere the receiver will look: payload first,
        // metadata next, the checksum field as a last resort.
        bitflips_.fetch_add(1, std::memory_order_relaxed);
        if (!p->payload.empty()) {
          const std::uint64_t bit = fs.rng.below(p->payload.size() * 8);
          p->payload[bit / 8] ^= std::byte{1} << (bit % 8);
        } else if (!p->metadata.empty()) {
          const std::uint64_t bit = fs.rng.below(p->metadata.size() * 8);
          p->metadata[bit / 8] ^= std::byte{1} << (bit % 8);
        } else {
          p->checksum ^= 1ull << fs.rng.below(64);
        }
      }
      if (plan.drop > 0.0 && fs.rng.uniform() < plan.drop) {
        drops_.fetch_add(1, std::memory_order_relaxed);
        delete p;
        p = nullptr;
      }
      if (p != nullptr && plan.duplicate > 0.0 &&
          fs.rng.uniform() < plan.duplicate) {
        dups_.fetch_add(1, std::memory_order_relaxed);
        dup = new Packet(*p);
      }
      if (p != nullptr && plan.delay > 0.0 && fs.rng.uniform() < plan.delay) {
        delays_.fetch_add(1, std::memory_order_relaxed);
        const unsigned ttl = static_cast<unsigned>(
            1 + fs.rng.below(fs.plan.max_delay_injects));
        fs.delayed.push_back({p, ttl});
        p = nullptr;
      }
    }
  }
  BGQ_SCHED_BLOCK_END();

  if (p != nullptr) deliver_packet(p);
  if (dup != nullptr) deliver_packet(dup);
  for (Packet* m : deliver_now) deliver_packet(m);
}

}  // namespace bgq::net
