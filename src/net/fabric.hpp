// In-process torus fabric: the functional-mode stand-in for the BG/Q
// Messaging Unit + 5D torus (§II-A).
//
// Each simulated node owns a set of reception FIFOs (lockless MPSC queues
// of Packet*, polled by PAMI contexts) and an optional WaitGate per FIFO so
// parked communication threads are woken on packet arrival — the emulated
// wakeup-unit path.
//
// Delivery discipline: *synchronous with modeled wire time.*  inject()
// routes the transfer, stamps Packet::wire_ns from the torus hop count and
// the link model, and enqueues it at the destination immediately.  The
// host's real time measures pure software overhead (the thing the paper's
// optimizations target); wire time is added analytically by the benches.
// A background pacing thread would add host-scheduler noise larger than
// the BG/Q wire times being modeled (this host has 1 core), so determinism
// wins.  Congestion-sensitive, machine-scale timing lives in src/sim.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/fault.hpp"
#include "net/packet.hpp"
#include "net/params.hpp"
#include "queue/l2_atomic_queue.hpp"
#include "topology/torus.hpp"
#include "transport/transport.hpp"
#include "wakeup/wakeup_unit.hpp"

namespace bgq::net {

/// A reception FIFO: lockless MPSC queue of packets plus the wait gate of
/// the thread that services it.
class ReceptionFifo {
 public:
  explicit ReceptionFifo(std::size_t capacity = 4096)
      : q_(capacity), active_gate_(&gate_) {}

  /// Fabric side.  Lossless: a full lockless ring spills to the queue's
  /// mutex-protected overflow (counted — see spills()).
  void deliver(Packet* p) {
    if (!q_.enqueue(p)) spills_.fetch_add(1, std::memory_order_relaxed);
    active_gate_.load(std::memory_order_acquire)->wake();
  }

  /// Fabric side, overload mode (FaultPlan::reject_on_full): enqueue only
  /// if the lockless ring has room.  Returns false — packet refused, still
  /// owned by the caller — when the FIFO is full.
  bool try_deliver(Packet* p) {
    if (!q_.try_enqueue(p)) return false;
    active_gate_.load(std::memory_order_acquire)->wake();
    return true;
  }

  /// Polling side (single consumer: the owning context).
  Packet* poll() { return q_.try_dequeue(); }

  bool empty() const { return q_.empty(); }

  /// Deliveries that missed the lockless ring and took the overflow path.
  std::uint64_t spills() const noexcept {
    return spills_.load(std::memory_order_relaxed);
  }

  /// Gate a comm thread parks on while this FIFO is empty.
  wakeup::WaitGate& gate() {
    return *active_gate_.load(std::memory_order_acquire);
  }

  /// Re-point arrivals at another gate — the comm-thread pool binds every
  /// FIFO it services to the servicing thread's own gate (one thread may
  /// advance several contexts).  Call before traffic starts.
  void bind_gate(wakeup::WaitGate* g) {
    active_gate_.store(g != nullptr ? g : &gate_,
                       std::memory_order_release);
  }

 private:
  queue::L2AtomicQueue<Packet*> q_;
  wakeup::WaitGate gate_;
  std::atomic<wakeup::WaitGate*> active_gate_;
  std::atomic<std::uint64_t> spills_{0};
};

/// The whole-machine fabric for functional runs.
///
/// Addressing: the torus ranks *physical nodes*; each node hosts
/// `endpoints_per_node` endpoints (processes).  Packet src/dst are endpoint
/// ids (node * endpoints_per_node + local).  Endpoints sharing a node are 0
/// torus hops apart — their transfers still pay the MU base latency, which
/// is exactly the Fig. 5 "different processes, same node" loopback case.
class Fabric : public transport::DeliverySink {
 public:
  /// `rec_fifos_per_node`: one per PAMI context, so each context polls its
  /// own FIFO without locks (BG/Q provides 272 per node; we allocate what
  /// the runtime asks for).  `fifo_capacity` sizes each reception FIFO's
  /// lockless ring (MachineConfig::rec_fifo_capacity plumbs it through).
  /// `transport` selects the delivery discipline for endpoints hosted by
  /// other OS processes (not owned; must outlive the fabric); when null
  /// the fabric owns an InProcTransport and behaves exactly as before.
  Fabric(const topo::Torus& torus, NetworkParams params,
         unsigned rec_fifos_per_endpoint, unsigned endpoints_per_node = 1,
         std::size_t fifo_capacity = 4096,
         transport::Transport* transport = nullptr);
  ~Fabric() override;

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const topo::Torus& torus() const noexcept { return torus_; }
  const NetworkParams& params() const noexcept { return params_; }
  unsigned rec_fifos_per_node() const noexcept { return fifos_per_node_; }
  unsigned endpoints_per_node() const noexcept { return endpoints_per_node_; }
  std::size_t endpoint_count() const noexcept {
    return torus_.node_count() * endpoints_per_node_;
  }

  /// Physical node hosting an endpoint.
  topo::NodeId node_of(topo::NodeId endpoint) const noexcept {
    return endpoint / endpoints_per_node_;
  }

  /// Inject a transfer.  Takes ownership of `p`.  For kMemFifo the packet
  /// is handed to the destination FIFO (receiver frees it); for RDMA kinds
  /// the copy is performed, the completion hook is queued to the
  /// destination FIFO as a zero-payload packet, and ownership passes with
  /// it.
  void inject(Packet* p);

  ReceptionFifo& reception_fifo(topo::NodeId node, unsigned fifo);

  // ---- fault injection (net/fault.hpp) ----------------------------------

  /// Install (or, with a disabled plan, remove) the chaos layer.  Call
  /// before traffic flows; the faulty path serializes injections on a
  /// mutex, the default lossless path is untouched.
  void set_fault_plan(const FaultPlan& plan);
  bool faults_enabled() const noexcept { return faults_ != nullptr; }

  // ---- transport (multi-process delivery) -------------------------------

  /// The delivery discipline for endpoints hosted by other OS processes.
  /// Also the backend-agnostic home of endpoint death/liveness state.
  transport::Transport& transport() noexcept { return *transport_; }
  const transport::Transport& transport() const noexcept {
    return *transport_;
  }

  /// Drain the transport's inbound frames into local reception FIFOs
  /// (no-op for the in-process transport).  Returns frames processed.
  std::size_t progress() { return transport_->poll(); }

  /// transport::DeliverySink: a packet another rank's fabric injected for
  /// one of our endpoints.  Takes ownership; performs the same reception
  /// FIFO handoff as a local transfer.
  void deliver_remote(Packet* p) override;

  // ---- endpoint death + liveness (fault tolerance) ----------------------
  // State lives in the transport so shared-memory jobs can share it; these
  // forwards keep the fabric's callers backend-agnostic.

  /// Blackhole an endpoint: every future transfer from or to it is
  /// swallowed (counted in blackholed()), modeling a dead node whose NIC
  /// neither sends nor acks.  Irreversible for the run.
  void kill_endpoint(topo::NodeId endpoint) {
    transport_->kill_endpoint(endpoint);
  }
  bool endpoint_dead(topo::NodeId endpoint) const noexcept {
    return transport_->endpoint_dead(endpoint);
  }

  /// Turn on per-endpoint last-heard stamping: every inject() records a
  /// host timestamp for its *source* endpoint, so any traffic — data,
  /// acks, heartbeats — refreshes the sender's liveness.  Off by default
  /// (one clock read per transfer).
  void enable_liveness() noexcept { transport_->enable_liveness(); }
  /// Last ns timestamp endpoint `ep` was heard from (0 = never).
  std::uint64_t last_heard(topo::NodeId ep) const noexcept {
    return transport_->last_heard(ep);
  }
  /// Stamp `ep` as alive now — the failure detector seeds all endpoints
  /// at run start so nobody is declared dead before traffic begins.
  void touch_liveness(topo::NodeId ep, std::uint64_t now_ns) noexcept {
    transport_->touch_liveness(ep, now_ns);
  }

  /// Transfers swallowed because an endpoint on either side was dead.
  std::uint64_t blackholed() const noexcept {
    return transport_->blackholed();
  }

  // ---- statistics -------------------------------------------------------
  std::uint64_t transfers() const noexcept {
    return transfers_.load(std::memory_order_relaxed);
  }
  std::uint64_t network_packets() const noexcept {
    return net_packets_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_moved() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  // Injected-fault counters (all zero without a plan).
  std::uint64_t faults_dropped() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t faults_duplicated() const noexcept {
    return dups_.load(std::memory_order_relaxed);
  }
  std::uint64_t faults_delayed() const noexcept {
    return delays_.load(std::memory_order_relaxed);
  }
  std::uint64_t faults_corrupted() const noexcept {
    return bitflips_.load(std::memory_order_relaxed);
  }
  /// Deliveries refused by a full FIFO (reject_on_full overload mode).
  std::uint64_t fifo_rejects() const noexcept {
    return rejects_.load(std::memory_order_relaxed);
  }
  /// Deliveries that took a FIFO's overflow path, summed over all FIFOs.
  std::uint64_t fifo_spills() const noexcept;

 private:
  struct FaultState;

  /// Terminal delivery (post-fault stage): remote routing, RDMA copy +
  /// FIFO handoff.
  void deliver_packet(Packet* p);
  /// Local reception-FIFO handoff shared by local and remote arrivals.
  void fifo_handoff(Packet* p);
  /// The chaos path: mature delayed packets, roll the dice on `p`.
  void inject_faulty(Packet* p);

  const topo::Torus torus_;
  const NetworkParams params_;
  const unsigned fifos_per_node_;
  const unsigned endpoints_per_node_;

  // fifos_[endpoint * fifos_per_node_ + fifo]; ReceptionFifo is immovable.
  std::vector<std::unique_ptr<ReceptionFifo>> fifos_;

  std::unique_ptr<FaultState> faults_;

  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport* transport_;  ///< never null after construction

  std::atomic<std::uint64_t> transfers_{0};
  std::atomic<std::uint64_t> net_packets_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> dups_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> bitflips_{0};
  std::atomic<std::uint64_t> rejects_{0};
};

}  // namespace bgq::net
