// Fault injection for the in-process fabric (chaos layer).
//
// The BG/Q Messaging Unit is lossless, and so is the emulated fabric by
// default.  Production message-driven runtimes cannot assume that: links
// drop, routers reorder, DRAM flips bits, and reception FIFOs overflow
// under bursts.  A FaultPlan makes the emulated fabric misbehave in all of
// those ways — deterministically, from a seeded PRNG — so the reliability
// protocol in the PAMI layer (seq numbers, acks, retransmits, checksums)
// can be exercised and measured.
//
// Faults apply to memory-FIFO transfers only: the RDMA kinds model the
// MU's DMA engine, whose transfers the runtime treats as hardware-reliable
// (their loss would tear the emulated one-sided copy itself, not a
// message).  The rendezvous protocol is still covered end to end because
// its request and ack legs are mem-FIFO sends.
//
// Plans can also be supplied via the BGQ_FAULT_PLAN environment variable
// ("drop=0.01,dup=0.01,delay=0.02,bitflip=0.001,seed=7"), which the
// Converse machine layer picks up so the whole existing test suite can run
// over a faulty fabric without editing a single test.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace bgq::net {

/// A whole-process kill event: at a deadline (wall ms since run start) or
/// a deterministic message count (global sent-message counter reaching
/// `at_msgs`), the named emulated process stops scheduling, its comm
/// threads park, and its fabric endpoints blackhole all traffic.  Exactly
/// one of at_ms / at_msgs is non-zero.
struct CrashEvent {
  unsigned process = 0;      ///< emulated process (fabric endpoint) to kill
  std::uint64_t at_ms = 0;   ///< fire this many ms after Machine::run starts
  std::uint64_t at_msgs = 0; ///< fire when the global send count reaches this
};

/// Per-transfer fault probabilities and knobs.  All probabilities are per
/// injected mem-FIFO transfer, rolled independently in the order
/// bit-flip, drop, duplicate, delay.
struct FaultPlan {
  double drop = 0.0;       ///< P(transfer vanishes)
  double duplicate = 0.0;  ///< P(transfer delivered twice)
  double delay = 0.0;      ///< P(held back behind 1..max_delay_injects
                           ///< later transfers — reordering)
  double bitflip = 0.0;    ///< P(one payload/metadata bit flips in flight)

  /// A delayed transfer re-enters delivery after this many subsequent
  /// inject() calls at the latest (uniform in [1, max_delay_injects]).
  unsigned max_delay_injects = 8;

  /// Overload mode: deliver into a reception FIFO only if the lockless
  /// ring has room — a full FIFO *refuses* the packet (counted as a
  /// reject) instead of spilling to the unbounded overflow queue.  The
  /// reliability layer's retransmit turns refusal into backpressure.
  bool reject_on_full = false;

  std::uint64_t seed = 0x9E3779B97F4A7C15ull;

  /// Process kill events ("crash@1:40ms" / "crash@2:5000msg").  Only armed
  /// on machines configured for fault tolerance (`MachineConfig::ft`); a
  /// crash-bearing env plan is inert for every other machine, so one plan
  /// can cover a whole test suite.
  std::vector<CrashEvent> crashes;

  bool enabled() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || bitflip > 0.0 ||
           reject_on_full || !crashes.empty();
  }

  /// Parse "drop=0.01,dup=0.01,delay=0.02,bitflip=0.001,maxdelay=8,
  /// reject=1,seed=7,crash@1:40ms,crash@2:5000msg".  Unknown keys or
  /// malformed values throw std::invalid_argument naming the bad token; an
  /// empty spec is a disabled plan.
  static FaultPlan parse(std::string_view spec);

  /// The BGQ_FAULT_PLAN environment override, or a disabled plan when the
  /// variable is unset.  A malformed value prints a diagnostic naming the
  /// bad token to stderr and exits(2) — fail loudly: a typo'd chaos run
  /// must not silently test nothing.
  static FaultPlan from_env();
};

}  // namespace bgq::net
