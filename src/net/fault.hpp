// Fault injection for the in-process fabric (chaos layer).
//
// The BG/Q Messaging Unit is lossless, and so is the emulated fabric by
// default.  Production message-driven runtimes cannot assume that: links
// drop, routers reorder, DRAM flips bits, and reception FIFOs overflow
// under bursts.  A FaultPlan makes the emulated fabric misbehave in all of
// those ways — deterministically, from a seeded PRNG — so the reliability
// protocol in the PAMI layer (seq numbers, acks, retransmits, checksums)
// can be exercised and measured.
//
// Faults apply to memory-FIFO transfers only: the RDMA kinds model the
// MU's DMA engine, whose transfers the runtime treats as hardware-reliable
// (their loss would tear the emulated one-sided copy itself, not a
// message).  The rendezvous protocol is still covered end to end because
// its request and ack legs are mem-FIFO sends.
//
// Plans can also be supplied via the BGQ_FAULT_PLAN environment variable
// ("drop=0.01,dup=0.01,delay=0.02,bitflip=0.001,seed=7"), which the
// Converse machine layer picks up so the whole existing test suite can run
// over a faulty fabric without editing a single test.
#pragma once

#include <cstdint>
#include <string_view>

namespace bgq::net {

/// Per-transfer fault probabilities and knobs.  All probabilities are per
/// injected mem-FIFO transfer, rolled independently in the order
/// bit-flip, drop, duplicate, delay.
struct FaultPlan {
  double drop = 0.0;       ///< P(transfer vanishes)
  double duplicate = 0.0;  ///< P(transfer delivered twice)
  double delay = 0.0;      ///< P(held back behind 1..max_delay_injects
                           ///< later transfers — reordering)
  double bitflip = 0.0;    ///< P(one payload/metadata bit flips in flight)

  /// A delayed transfer re-enters delivery after this many subsequent
  /// inject() calls at the latest (uniform in [1, max_delay_injects]).
  unsigned max_delay_injects = 8;

  /// Overload mode: deliver into a reception FIFO only if the lockless
  /// ring has room — a full FIFO *refuses* the packet (counted as a
  /// reject) instead of spilling to the unbounded overflow queue.  The
  /// reliability layer's retransmit turns refusal into backpressure.
  bool reject_on_full = false;

  std::uint64_t seed = 0x9E3779B97F4A7C15ull;

  bool enabled() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || bitflip > 0.0 ||
           reject_on_full;
  }

  /// Parse "drop=0.01,dup=0.01,delay=0.02,bitflip=0.001,maxdelay=8,
  /// reject=1,seed=7".  Unknown keys or malformed values throw
  /// std::invalid_argument; an empty spec is a disabled plan.
  static FaultPlan parse(std::string_view spec);

  /// The BGQ_FAULT_PLAN environment override, or a disabled plan when the
  /// variable is unset.  A malformed value throws (fail loudly: a typo'd
  /// chaos run must not silently test nothing).
  static FaultPlan from_env();
};

}  // namespace bgq::net
