// Network cost parameters for the BG/Q torus model (§II-A).
//
// Used in two places: the in-process fabric stamps every delivered packet
// with its modeled wire time, and the discrete-event models in src/model
// use the same formula for scale-out runs.  Defaults follow the published
// BG/Q numbers: 2 GB/s raw per link direction, 1.8 GB/s effective after
// packet header overhead, 512-byte network packets, ~40 ns per hop router
// latency and sub-microsecond nearest-neighbour MU-to-MU latency.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bgq::net {

struct NetworkParams {
  double link_bandwidth_gb_s = 1.8;     ///< effective per-link, per-direction
  std::uint32_t packet_bytes = 512;     ///< max payload per network packet
  std::uint32_t packet_header_bytes = 32;
  std::uint64_t hop_latency_ns = 40;    ///< per-router traversal
  std::uint64_t base_latency_ns = 550;  ///< MU inject + first-hop + MU receive
  std::uint64_t rdma_setup_ns = 300;    ///< extra round-trip setup for rget

  /// Number of 512-byte packets a transfer of `bytes` needs.
  std::uint32_t packets_for(std::size_t bytes) const noexcept {
    if (bytes == 0) return 1;
    return static_cast<std::uint32_t>((bytes + packet_bytes - 1) /
                                      packet_bytes);
  }

  /// Modeled one-way wire time for `bytes` over `hops` torus hops,
  /// assuming an otherwise idle path (congestion is a DES concern).
  std::uint64_t wire_time_ns(std::size_t bytes, int hops) const noexcept {
    const std::uint32_t npkts = packets_for(bytes);
    const double wire_bytes =
        static_cast<double>(bytes) +
        static_cast<double>(npkts) * packet_header_bytes;
    const auto serialization_ns =
        static_cast<std::uint64_t>(wire_bytes / link_bandwidth_gb_s);
    return base_latency_ns +
           static_cast<std::uint64_t>(hops > 0 ? hops - 1 : 0) *
               hop_latency_ns +
           serialization_ns;
  }
};

/// BG/P-era parameters for the Fig. 11 comparison model: 3D torus,
/// 425 MB/s per link, higher per-hop latency.
inline NetworkParams bgp_network_params() {
  NetworkParams p;
  p.link_bandwidth_gb_s = 0.425;
  p.packet_bytes = 256;
  p.hop_latency_ns = 100;
  p.base_latency_ns = 1600;
  p.rdma_setup_ns = 600;
  return p;
}

}  // namespace bgq::net
