// Network transfer descriptors for the in-process fabric.
//
// The BG/Q Messaging Unit supports three point-to-point packet types
// (§II-A): memory-FIFO packets (delivered into a reception FIFO), RDMA
// read and RDMA write.  The fabric moves whole *transfers* (a message's
// worth of packets); per-packet chunking enters through the wire-time
// formula and the packet counters, which is what the runtime above can
// observe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "topology/torus.hpp"

namespace bgq::net {

enum class TransferKind : std::uint8_t {
  kMemFifo,    ///< active-message packet into a reception FIFO
  kRdmaRead,   ///< rget: pull bytes from a remote registered buffer
  kRdmaWrite,  ///< rput: push bytes into a remote registered buffer
};

/// A registered memory region (PAMI memregion).  In-process emulation:
/// just the base pointer and length; "registration" is bounds bookkeeping.
struct MemRegion {
  std::byte* base = nullptr;
  std::size_t bytes = 0;
};

/// Reliability-protocol packet flags (net/fault.hpp, pami reliability).
/// Zero on every packet unless the sending client enabled reliability, so
/// the lossless fast path carries no protocol state.
enum PacketFlag : std::uint8_t {
  kPktReliable = 1u << 0,  ///< carries a sequence number; must be acked
  kPktAck = 1u << 1,       ///< standalone ack: `acks` only, no dispatch
};

/// One transfer in flight.  Owned by the fabric between inject() and
/// delivery; memory-FIFO transfers are then owned by the receiver until it
/// calls Packet::release().
struct Packet {
  TransferKind kind = TransferKind::kMemFifo;
  topo::NodeId src = 0;
  topo::NodeId dst = 0;

  /// Active-message dispatch id (mem-FIFO only).
  std::uint16_t dispatch = 0;

  /// Reception FIFO at the destination this packet is steered to.
  std::uint16_t rec_fifo = 0;

  /// Small header the sender attaches (PAMI "immediate"/metadata bytes).
  std::vector<std::byte> metadata;

  /// Eager payload (mem-FIFO transfers).
  std::vector<std::byte> payload;

  // RDMA fields: same-address-space emulation uses raw pointers; the
  // runtime must keep buffers registered until the completion fires.
  const std::byte* rdma_src = nullptr;
  std::byte* rdma_dst = nullptr;
  std::size_t rdma_bytes = 0;

  /// Completion hook run on the *destination side's* polling thread after
  /// delivery (for RDMA: after the copy).  May be empty.
  std::function<void()> on_delivered;

  /// Modeled one-way wire time stamped by the fabric at injection.
  std::uint64_t wire_ns = 0;

  /// Causal trace id of the message this transfer carries (0 = untraced).
  /// Observability sidecar only: excluded from packet_checksum because the
  /// receiver never acts on it — a corrupted cid must not fail delivery.
  std::uint64_t cid = 0;

  /// Number of 512-byte network packets this transfer consumed.
  std::uint32_t num_packets = 0;

  // ---- reliability protocol fields (all zero/empty unless the sender's
  // client enabled reliability; see pami/reliability.hpp) ----------------

  /// Protocol flags (PacketFlag bits).
  std::uint8_t flags = 0;

  /// Sending context index at the source endpoint: (src, src_ctx) names
  /// the sender half of the channel the seq number lives in.
  std::uint16_t src_ctx = 0;

  /// Per-channel sequence number (1-based; 0 = unsequenced).
  std::uint64_t seq = 0;

  /// End-to-end checksum over addressing, metadata, payload, and acks —
  /// computed by the sender, verified by the receiver.  Catches in-flight
  /// bit flips (FaultPlan::bitflip).
  std::uint64_t checksum = 0;

  /// Piggybacked (or, with kPktAck, standalone) acknowledged seqs for the
  /// reverse direction of the channel.
  std::vector<std::uint64_t> acks;

  std::size_t payload_bytes() const noexcept {
    return kind == TransferKind::kMemFifo ? payload.size() : rdma_bytes;
  }
};

/// FNV-1a over everything the receiver acts on: addressing, protocol
/// fields, metadata, payload, and the piggybacked acks.  The checksum
/// field itself is excluded (it holds the result).
inline std::uint64_t packet_checksum(const Packet& p) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](const void* data, std::size_t n) noexcept {
    const auto* b = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001B3ull;
    }
  };
  mix(&p.src, sizeof(p.src));
  mix(&p.dst, sizeof(p.dst));
  mix(&p.dispatch, sizeof(p.dispatch));
  mix(&p.rec_fifo, sizeof(p.rec_fifo));
  mix(&p.flags, sizeof(p.flags));
  mix(&p.src_ctx, sizeof(p.src_ctx));
  mix(&p.seq, sizeof(p.seq));
  mix(p.metadata.data(), p.metadata.size());
  mix(p.payload.data(), p.payload.size());
  for (const std::uint64_t a : p.acks) mix(&a, sizeof(a));
  return h;
}

}  // namespace bgq::net
