// Network transfer descriptors for the in-process fabric.
//
// The BG/Q Messaging Unit supports three point-to-point packet types
// (§II-A): memory-FIFO packets (delivered into a reception FIFO), RDMA
// read and RDMA write.  The fabric moves whole *transfers* (a message's
// worth of packets); per-packet chunking enters through the wire-time
// formula and the packet counters, which is what the runtime above can
// observe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "topology/torus.hpp"

namespace bgq::net {

enum class TransferKind : std::uint8_t {
  kMemFifo,    ///< active-message packet into a reception FIFO
  kRdmaRead,   ///< rget: pull bytes from a remote registered buffer
  kRdmaWrite,  ///< rput: push bytes into a remote registered buffer
};

/// A registered memory region (PAMI memregion).  In-process emulation:
/// just the base pointer and length; "registration" is bounds bookkeeping.
struct MemRegion {
  std::byte* base = nullptr;
  std::size_t bytes = 0;
};

/// One transfer in flight.  Owned by the fabric between inject() and
/// delivery; memory-FIFO transfers are then owned by the receiver until it
/// calls Packet::release().
struct Packet {
  TransferKind kind = TransferKind::kMemFifo;
  topo::NodeId src = 0;
  topo::NodeId dst = 0;

  /// Active-message dispatch id (mem-FIFO only).
  std::uint16_t dispatch = 0;

  /// Reception FIFO at the destination this packet is steered to.
  std::uint16_t rec_fifo = 0;

  /// Small header the sender attaches (PAMI "immediate"/metadata bytes).
  std::vector<std::byte> metadata;

  /// Eager payload (mem-FIFO transfers).
  std::vector<std::byte> payload;

  // RDMA fields: same-address-space emulation uses raw pointers; the
  // runtime must keep buffers registered until the completion fires.
  const std::byte* rdma_src = nullptr;
  std::byte* rdma_dst = nullptr;
  std::size_t rdma_bytes = 0;

  /// Completion hook run on the *destination side's* polling thread after
  /// delivery (for RDMA: after the copy).  May be empty.
  std::function<void()> on_delivered;

  /// Modeled one-way wire time stamped by the fabric at injection.
  std::uint64_t wire_ns = 0;

  /// Number of 512-byte network packets this transfer consumed.
  std::uint32_t num_packets = 0;

  std::size_t payload_bytes() const noexcept {
    return kind == TransferKind::kMemFifo ? payload.size() : rdma_bytes;
  }
};

}  // namespace bgq::net
