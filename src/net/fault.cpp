#include "net/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace bgq::net {

namespace {

double parse_prob(const std::string& key, const std::string& val) {
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(val, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != val.size() || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("FaultPlan: bad probability for '" + key +
                                "': " + val);
  }
  return p;
}

std::uint64_t parse_u64(const std::string& key, const std::string& val) {
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(val, &used, 0);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != val.size()) {
    throw std::invalid_argument("FaultPlan: bad integer for '" + key +
                                "': " + val);
  }
  return static_cast<std::uint64_t>(v);
}

// "crash@<proc>:<N>ms" or "crash@<proc>:<N>msg" — kill process <proc>
// after N wall-clock ms, or deterministically once the machine's global
// send counter reaches N messages.
CrashEvent parse_crash(std::string_view item) {
  const std::string tok(item);
  const std::size_t at = item.find('@');
  const std::size_t colon = item.find(':', at == std::string_view::npos
                                               ? 0
                                               : at + 1);
  if (at == std::string_view::npos || colon == std::string_view::npos ||
      colon <= at + 1 || colon + 1 >= item.size()) {
    throw std::invalid_argument(
        "FaultPlan: bad crash event '" + tok +
        "' (want crash@<proc>:<N>ms or crash@<proc>:<N>msg)");
  }
  CrashEvent ev;
  ev.process = static_cast<unsigned>(
      parse_u64("crash", std::string(item.substr(at + 1, colon - at - 1))));
  const std::string_view when = item.substr(colon + 1);
  std::uint64_t n = 0;
  if (when.size() > 3 && when.substr(when.size() - 3) == "msg") {
    n = parse_u64("crash", std::string(when.substr(0, when.size() - 3)));
    if (n == 0) {
      throw std::invalid_argument("FaultPlan: crash message count must be "
                                  ">= 1 in '" + tok + "'");
    }
    ev.at_msgs = n;
  } else if (when.size() > 2 && when.substr(when.size() - 2) == "ms") {
    n = parse_u64("crash", std::string(when.substr(0, when.size() - 2)));
    ev.at_ms = n;
  } else {
    throw std::invalid_argument(
        "FaultPlan: bad crash deadline '" + std::string(when) + "' in '" +
        tok + "' (want <N>ms or <N>msg)");
  }
  return ev;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;

    if (item.substr(0, 6) == "crash@") {
      plan.crashes.push_back(parse_crash(item));
      continue;
    }

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                  std::string(item) + "'");
    }
    const std::string key(item.substr(0, eq));
    const std::string val(item.substr(eq + 1));
    if (key == "drop") {
      plan.drop = parse_prob(key, val);
    } else if (key == "dup") {
      plan.duplicate = parse_prob(key, val);
    } else if (key == "delay") {
      plan.delay = parse_prob(key, val);
    } else if (key == "bitflip") {
      plan.bitflip = parse_prob(key, val);
    } else if (key == "maxdelay") {
      const std::uint64_t v = parse_u64(key, val);
      if (v == 0) throw std::invalid_argument("FaultPlan: maxdelay >= 1");
      plan.max_delay_injects = static_cast<unsigned>(v);
    } else if (key == "reject") {
      plan.reject_on_full = parse_u64(key, val) != 0;
    } else if (key == "seed") {
      plan.seed = parse_u64(key, val);
    } else {
      throw std::invalid_argument("FaultPlan: unknown key '" + key + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("BGQ_FAULT_PLAN");
  if (env == nullptr || *env == '\0') return FaultPlan{};
  try {
    return parse(env);
  } catch (const std::invalid_argument& e) {
    // Reject-and-exit: a typo'd BGQ_FAULT_PLAN must not silently run a
    // no-fault (or wrong-fault) experiment.
    std::fprintf(stderr,
                 "BGQ_FAULT_PLAN rejected: %s\n  (value was: \"%s\")\n",
                 e.what(), env);
    std::exit(2);
  }
}

}  // namespace bgq::net
