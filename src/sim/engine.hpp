// Discrete-event simulation engine for machine-scale experiments.
//
// The paper's evaluation runs on up to 16,384 BG/Q nodes; this host has
// one core.  Following the BigSim methodology used around Charm++, the
// scale-out benches replay each experiment's communication/computation
// structure over a simulated machine whose cost parameters come from the
// functional runtime and the published BG/Q numbers.  This file is the
// generic core: a time-ordered event queue plus serially-serviced
// resources (cores, torus links).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace bgq::sim {

/// Simulated time in microseconds.
using Time = double;

/// Minimal event engine: schedule closures at absolute times, run to
/// drain.  Deterministic: ties break by insertion order.
class Engine {
 public:
  void schedule(Time t, std::function<void()> fn) {
    queue_.push(Item{t, seq_++, std::move(fn)});
  }

  /// Schedule relative to now.
  void after(Time dt, std::function<void()> fn) {
    schedule(now_ + dt, std::move(fn));
  }

  Time now() const noexcept { return now_; }

  /// Run until the queue drains (or until `until`); returns final time.
  Time run(Time until = -1.0) {
    while (!queue_.empty()) {
      const Item& top = queue_.top();
      if (until >= 0 && top.t > until) break;
      now_ = top.t;
      auto fn = std::move(const_cast<Item&>(top).fn);
      queue_.pop();
      fn();
    }
    return now_;
  }

  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Item {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Item& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
};

/// A serially-serviced resource (a torus link, a core's message pipeline):
/// work items queue FIFO and each occupies the resource for its duration.
class Server {
 public:
  /// Submit work that becomes ready at `ready` and needs `duration`.
  /// Returns its completion time.
  Time submit(Time ready, Time duration) {
    const Time begin = ready > available_ ? ready : available_;
    available_ = begin + duration;
    busy_ += duration;
    return available_;
  }

  Time available() const noexcept { return available_; }
  Time busy_time() const noexcept { return busy_; }
  void reset() noexcept {
    available_ = 0;
    busy_ = 0;
  }

 private:
  Time available_ = 0;
  Time busy_ = 0;
};

}  // namespace bgq::sim
