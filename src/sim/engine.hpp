// Discrete-event simulation engine for machine-scale experiments.
//
// The paper's evaluation runs on up to 16,384 BG/Q nodes; this host has
// one core.  Following the BigSim methodology used around Charm++, the
// scale-out benches replay each experiment's communication/computation
// structure over a simulated machine whose cost parameters come from the
// functional runtime and the published BG/Q numbers.  This file is the
// generic core: a time-ordered event queue plus serially-serviced
// resources (cores, torus links).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "trace/event.hpp"
#include "trace/ring.hpp"

namespace bgq::sim {

/// Simulated time in microseconds.
using Time = double;

/// Simulated µs -> trace-clock ns (trace events carry nanoseconds, so a
/// DES timeline exports through the same Chrome/summary pipeline as the
/// functional runtime's host-clock events).
inline std::uint64_t trace_ns(Time t) {
  return t <= 0 ? 0 : static_cast<std::uint64_t>(t * 1000.0);
}

/// Minimal event engine: schedule closures at absolute times, run to
/// drain.  Deterministic: ties break by insertion order.
class Engine {
 public:
  void schedule(Time t, std::function<void()> fn) {
    queue_.push(Item{t, seq_++, std::move(fn)});
  }

  /// Schedule relative to now.
  void after(Time dt, std::function<void()> fn) {
    schedule(now_ + dt, std::move(fn));
  }

  Time now() const noexcept { return now_; }

  /// Attach a trace ring: every executed event emits a kSimEvent instant
  /// stamped with *simulated* time (see trace_ns).  Pass nullptr to
  /// detach; the unbound engine pays one branch per event.
  void bind_trace(trace::EventRing* r) noexcept { ring_ = r; }

  /// Run until the queue drains (or until `until`); returns final time.
  Time run(Time until = -1.0) {
    while (!queue_.empty()) {
      const Item& top = queue_.top();
      if (until >= 0 && top.t > until) break;
      now_ = top.t;
      auto fn = std::move(const_cast<Item&>(top).fn);
      queue_.pop();
      if (ring_) {
        ring_->emit({trace_ns(now_),
                     static_cast<std::uint32_t>(queue_.size()),
                     trace::EventKind::kSimEvent});
      }
      fn();
    }
    return now_;
  }

  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Item {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Item& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  trace::EventRing* ring_ = nullptr;
};

/// A serially-serviced resource (a torus link, a core's message pipeline):
/// work items queue FIFO and each occupies the resource for its duration.
class Server {
 public:
  /// Attach a trace ring: each submitted work item emits a kTaskBegin /
  /// kTaskEnd span at its (simulated) service window, so a server's
  /// occupancy renders as a track in the Chrome timeline.
  void bind_trace(trace::EventRing* r, std::uint32_t tag = 0) noexcept {
    ring_ = r;
    tag_ = tag;
  }

  /// Submit work that becomes ready at `ready` and needs `duration`.
  /// Returns its completion time.
  Time submit(Time ready, Time duration) {
    const Time begin = ready > available_ ? ready : available_;
    available_ = begin + duration;
    busy_ += duration;
    if (ring_) {
      // begin is nondecreasing across submits, so spans emit in timeline
      // order even though completion times interleave.
      ring_->emit({trace_ns(begin), tag_, trace::EventKind::kTaskBegin});
      ring_->emit({trace_ns(available_), tag_, trace::EventKind::kTaskEnd});
    }
    return available_;
  }

  Time available() const noexcept { return available_; }
  Time busy_time() const noexcept { return busy_; }
  void reset() noexcept {
    available_ = 0;
    busy_ = 0;
  }

 private:
  Time available_ = 0;
  Time busy_ = 0;
  trace::EventRing* ring_ = nullptr;
  std::uint32_t tag_ = 0;
};

}  // namespace bgq::sim
