// Torus network model for phase-structured communication (transposes,
// halo exchanges, burst sends).
//
// Every directed torus link is a Server; a message follows its dimension-
// ordered route, paying serialization on each link in sequence plus the
// per-hop router latency.  Messages are replayed in injection-time order,
// so hot links back up and the familiar torus contention behaviour —
// all-to-alls saturating the bisection — emerges rather than being
// hard-coded.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "net/params.hpp"
#include "sim/engine.hpp"
#include "topology/torus.hpp"

namespace bgq::sim {

class PhaseNetwork {
 public:
  PhaseNetwork(const topo::Torus& torus, net::NetworkParams params)
      : torus_(torus), params_(params) {}

  const topo::Torus& torus() const noexcept { return torus_; }
  const net::NetworkParams& params() const noexcept { return params_; }

  /// Deliver one message injected at `t_inject`: returns arrival time at
  /// the destination NIC (before receive-side software costs).
  Time deliver(Time t_inject, topo::NodeId src, topo::NodeId dst,
               std::size_t bytes) {
    if (src == dst) return t_inject;  // MU loopback handled by caller costs
    const std::size_t wire_bytes =
        bytes + static_cast<std::size_t>(params_.packets_for(bytes)) *
                    params_.packet_header_bytes;
    const Time ser =
        static_cast<double>(wire_bytes) / params_.link_bandwidth_gb_s *
        1e-3;  // bytes / (GB/s) = ns; convert to us
    // Cut-through: each link is *occupied* for the full serialization
    // time (that is what creates contention), but the message's head
    // pipelines through, so an uncontended transfer pays ser once plus
    // the per-hop router latency.
    Time head = t_inject + params_.base_latency_ns * 1e-3;
    topo::NodeId prev = src;
    for (topo::NodeId hopnode : torus_.route(src, dst)) {
      Server& link = links_[link_key(prev, hopnode)];
      const Time done = link.submit(head, ser);
      head = done - ser + params_.hop_latency_ns * 1e-3;
      prev = hopnode;
    }
    return head + ser;
  }

  /// Total busy time across links (network load indicator).
  Time total_link_busy() const {
    Time sum = 0;
    for (const auto& [k, s] : links_) sum += s.busy_time();
    return sum;
  }

  void reset() { links_.clear(); }

 private:
  static std::uint64_t link_key(topo::NodeId a, topo::NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  const topo::Torus& torus_;
  net::NetworkParams params_;
  std::map<std::uint64_t, Server> links_;
};

}  // namespace bgq::sim
