// Emulation of the Blue Gene/Q L2-cache atomic operations (paper §II).
//
// On BG/Q the L2 cache slices contain integer adders so that a *load* from a
// specially-mapped alias of a 64-bit word performs an atomic read-modify-
// write in the cache itself: load-increment, load-decrement, load-clear and
// their bounded variants, plus stores that add/or/xor into the word.  These
// complete in ~60 cycles without bouncing the line between cores, which is
// why the Charm++ port builds its queues and allocator pools on them.
//
// Host emulation: each L2 atomic word is a std::atomic<uint64_t>.  The
// *semantics* are preserved exactly — in particular the bounded increment's
// failure protocol, which returns 0xFFFF'FFFF'FFFF'FFFF when the counter has
// reached the bound stored in the adjacent word.  Only the cycle cost
// differs; cost constants live in src/model for the scale-out simulator.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::l2 {

/// Value returned by bounded load-increment/decrement when the operation
/// fails against the bound (matches the BG/Q convention of all-ones).
inline constexpr std::uint64_t kBoundedFailure = ~std::uint64_t{0};

/// One 64-bit word with the BG/Q L2 atomic operation set.
///
/// The real hardware exposes these through load/store on aliased addresses;
/// here they are member functions.  All operations are sequentially
/// consistent unless noted — the BG/Q L2 gives a single serialization point
/// per word, which seq_cst models most directly.  Hot paths that only need
/// acquire/release use the *_relaxed variants.
class AtomicWord {
 public:
  AtomicWord() noexcept : v_(0) {}
  explicit AtomicWord(std::uint64_t init) noexcept : v_(init) {}

  AtomicWord(const AtomicWord&) = delete;
  AtomicWord& operator=(const AtomicWord&) = delete;

  /// Plain load (the paced idle-poll probes use this).
  std::uint64_t load(std::memory_order mo = std::memory_order_acquire)
      const noexcept {
    return v_.load(mo);
  }

  /// Plain store.
  void store(std::uint64_t x,
             std::memory_order mo = std::memory_order_release) noexcept {
    v_.store(x, mo);
  }

  /// L2 "load-increment": returns the old value, adds one.
  std::uint64_t load_increment() noexcept {
    return v_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// L2 "load-decrement": returns the old value, subtracts one.
  std::uint64_t load_decrement() noexcept {
    return v_.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// L2 "load-clear": returns the old value, stores zero.
  std::uint64_t load_clear() noexcept {
    return v_.exchange(0, std::memory_order_acq_rel);
  }

  /// L2 "store-add": adds x (no result).
  void store_add(std::uint64_t x) noexcept {
    v_.fetch_add(x, std::memory_order_acq_rel);
  }

  /// L2 "store-add" returning the new value (convenience for counters that
  /// track completion; the hardware variant pairs store-add with a load).
  std::uint64_t add_fetch(std::uint64_t x) noexcept {
    return v_.fetch_add(x, std::memory_order_acq_rel) + x;
  }

  /// L2 "store-or": bitwise-or x into the word.
  void store_or(std::uint64_t x) noexcept {
    v_.fetch_or(x, std::memory_order_acq_rel);
  }

  /// L2 "store-xor": bitwise-xor x into the word.
  void store_xor(std::uint64_t x) noexcept {
    v_.fetch_xor(x, std::memory_order_acq_rel);
  }

  /// L2 "store-max" (unsigned): word = max(word, x).
  void store_max(std::uint64_t x) noexcept {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < x &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
    }
  }

  /// Compare-and-swap (the host fallback the non-L2 build of the real port
  /// uses; exposed for tests and the mutex-free overflow checks).
  bool compare_exchange(std::uint64_t& expected, std::uint64_t desired)
      noexcept {
    return v_.compare_exchange_strong(expected, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> v_;
};

static_assert(sizeof(AtomicWord) == sizeof(std::uint64_t),
              "AtomicWord must stay layout-compatible with a 64-bit word");

/// A producer counter and its bound in adjacent memory locations, padded so
/// the pair owns an entire (emulated) L2 line — the exact layout of the
/// paper's lockless queue counters (§III-A, Fig. 2).
///
/// Protocol:
///   * producers call bounded_increment(); success allocates slot
///     (old_counter % queue_size), failure (counter == bound) returns
///     kBoundedFailure and the producer falls back to the overflow queue;
///   * the consumer advances `bound` by the number of slots it has drained,
///     re-opening them to producers.
class alignas(kL2Line) BoundedCounter {
 public:
  /// `bound` is the initial maximum value the counter may be incremented to
  /// (exclusive), i.e. the queue capacity.
  explicit BoundedCounter(std::uint64_t bound = 0) noexcept
      : counter_(0), bound_(bound) {}

  /// Atomic bounded load-increment.  Returns the counter's old value on
  /// success, kBoundedFailure when counter == bound.
  ///
  /// The emulation must tolerate the consumer concurrently raising the
  /// bound, so it re-reads the bound on every CAS retry — this matches the
  /// hardware, where the adder checks the live bound word.
  std::uint64_t bounded_increment() noexcept {
    std::uint64_t cur = counter_.load(std::memory_order_relaxed);
    for (;;) {
      BGQ_SCHED_POINT("l2.bounded_increment.loaded");
      if (cur >= bound_.load(std::memory_order_acquire)) {
        // Bound may have been raised between our read of counter and bound;
        // one more counter re-read keeps the failure check precise.
        BGQ_SCHED_POINT("l2.bounded_increment.recheck");
        cur = counter_.load(std::memory_order_acquire);
        if (cur >= bound_.load(std::memory_order_acquire)) {
          return kBoundedFailure;
        }
      }
      BGQ_SCHED_POINT("l2.bounded_increment.cas");
      if (counter_.compare_exchange(cur, cur + 1)) return cur;
      // cur was refreshed by compare_exchange; loop.
    }
  }

  /// Consumer-side: raise the bound by n drained slots.
  void advance_bound(std::uint64_t n) noexcept { bound_.store_add(n); }

  std::uint64_t counter() const noexcept { return counter_.load(); }
  std::uint64_t bound() const noexcept { return bound_.load(); }

  /// True when every slot below the bound has been claimed.
  bool full() const noexcept { return counter() >= bound(); }

 private:
  AtomicWord counter_;  // first word of the pair
  AtomicWord bound_;    // "adjacent memory location" holding the bound
};

static_assert(alignof(BoundedCounter) == kL2Line,
              "counter pair must own its cache line");

}  // namespace bgq::l2
