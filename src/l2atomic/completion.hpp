// Messaging-progress counters built on L2 atomics (paper §II: "L2 atomics
// can be used to design lockless queues and messaging counters that are
// used to track communication progress").
//
// A CompletionCounter tracks how many of an expected number of events
// (packets sent, messages received, rput acks) have completed; many threads
// store-add into it and any thread may poll done().  The many-to-many
// implementation uses one per handle and per phase.
#pragma once

#include <cstdint>

#include "l2atomic/l2_atomic.hpp"

namespace bgq::l2 {

/// Counts completions toward a target; reusable across iterations by
/// raising the target instead of resetting the count (avoids the reset race
/// where a late arrival from iteration i lands after the reset for i+1).
class alignas(kL2Line) CompletionCounter {
 public:
  CompletionCounter() noexcept : count_(0), target_(0) {}

  /// Arm the counter for `n` more events.  Returns the new target so
  /// callers can wait for a specific epoch.
  std::uint64_t expect(std::uint64_t n) noexcept {
    return target_.add_fetch(n);
  }

  /// Record `n` completed events (L2 store-add on the count word).
  void complete(std::uint64_t n = 1) noexcept { count_.store_add(n); }

  /// Record `n` completions and return the new total — lets exactly one
  /// thread observe a threshold crossing (epoch-completion callbacks).
  std::uint64_t complete_fetch(std::uint64_t n = 1) noexcept {
    return count_.add_fetch(n);
  }

  /// All currently-expected events have completed.
  bool done() const noexcept { return count_.load() >= target_.load(); }

  /// Completions have reached `epoch` (a value returned by expect()).
  bool reached(std::uint64_t epoch) const noexcept {
    return count_.load() >= epoch;
  }

  std::uint64_t count() const noexcept { return count_.load(); }
  std::uint64_t target() const noexcept { return target_.load(); }

 private:
  AtomicWord count_;
  AtomicWord target_;
};

}  // namespace bgq::l2
