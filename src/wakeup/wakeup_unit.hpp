// Emulation of the BG/Q wakeup unit + PowerPC `wait` instruction (§II).
//
// On BG/Q a hardware thread can execute `wait`, parking itself without
// consuming pipeline slots, after programming the wakeup unit's WAC
// registers to watch a memory range (e.g. a work queue's producer counter)
// or network reception-FIFO activity; any store into the range, or a packet
// arrival, raises a low-overhead interrupt that resumes the thread.
//
// Host emulation: an *eventcount*.  The waiting thread spins briefly (cheap
// wakeups stay cheap) and then blocks on a futex-backed condvar; the waking
// side — which on BG/Q is the store hardware itself — is an explicit
// wake() call that the runtime issues immediately after the store it would
// have been (enqueue to a work queue, packet delivery into a reception
// FIFO).  The two-phase prepare/commit protocol makes lost wakeups
// impossible: a wake() between prepare_wait() and commit_wait() turns the
// commit into a no-op.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/cacheline.hpp"
#include "common/spin.hpp"
#include "trace/trace.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::wakeup {

/// One eventcount; typically one per communication thread.
class alignas(kL2Line) WaitGate {
 public:
  WaitGate() = default;
  WaitGate(const WaitGate&) = delete;
  WaitGate& operator=(const WaitGate&) = delete;

  /// Phase 1 of waiting: announce intent and snapshot the epoch.  After
  /// this, re-check for work; if work appeared, call cancel_wait() and
  /// process it instead of sleeping.
  std::uint64_t prepare_wait() noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    BGQ_SCHED_POINT("gate.prepare.announced");
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Abort a prepared wait (work was found on the re-check).
  void cancel_wait() noexcept {
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  /// Phase 2: block until some wake() advances the epoch past `seen`.
  /// Spins briefly first — the emulated analogue of the wakeup unit's
  /// fast-resume path.
  void commit_wait(std::uint64_t seen) {
    for (int spin = 0; spin < kSpinProbes; ++spin) {
      BGQ_SCHED_POINT("gate.commit.probe");
      if (epoch_.load(std::memory_order_acquire) != seen) {
        cancel_wait();
        return;
      }
      l2_paced_delay();
    }
    BGQ_SCHED_BLOCK_BEGIN();
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [&] {
        return epoch_.load(std::memory_order_acquire) != seen;
      });
    }
    BGQ_SCHED_BLOCK_END();
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  /// commit_wait with a deadline: returns once a wake() advances the epoch
  /// past `seen` *or* `timeout_ns` elapses.  Used by comm threads that must
  /// stay responsive to reliability retransmit timers — a lost ack produces
  /// no wake(), only the passage of time.
  void commit_wait_for(std::uint64_t seen, std::uint64_t timeout_ns) {
    for (int spin = 0; spin < kSpinProbes; ++spin) {
      BGQ_SCHED_POINT("gate.commit.probe");
      if (epoch_.load(std::memory_order_acquire) != seen) {
        cancel_wait();
        return;
      }
      l2_paced_delay();
    }
    BGQ_SCHED_BLOCK_BEGIN();
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait_for(lk, std::chrono::nanoseconds(timeout_ns), [&] {
        return epoch_.load(std::memory_order_acquire) != seen;
      });
    }
    BGQ_SCHED_BLOCK_END();
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  /// Wake all threads parked on this gate.  Called by producers right
  /// after the store the WAC register would have observed.  Cheap when
  /// nobody is waiting (one atomic load).
  void wake() noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    BGQ_SCHED_POINT("gate.wake.bumped");
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    BGQ_TRACE_EVENT(::bgq::trace::EventKind::kGateWake, 1);
    {
      // Empty critical section pairs the epoch bump with the cv wait so a
      // waiter cannot slip between its predicate check and its sleep.
      BGQ_SCHED_BLOCK_BEGIN();
      std::unique_lock<std::mutex> g(mutex_);
      BGQ_SCHED_BLOCK_END();
    }
    cv_.notify_all();
    wakeups_.fetch_add(1, std::memory_order_relaxed);
  }

  /// True if some thread is (or is about to be) parked; lets callers skip
  /// redundant wakes.
  bool has_waiters() const noexcept {
    return waiters_.load(std::memory_order_acquire) != 0;
  }

  std::uint64_t wakeup_count() const noexcept {
    return wakeups_.load(std::memory_order_relaxed);
  }

 private:
#if defined(BGQ_SCHEDULE_POINTS)
  // Under the schedule fuzzer each probe is a scheduling decision; a long
  // spin phase would only pad the decision tree with no-ops.
  static constexpr int kSpinProbes = 2;
#else
  static constexpr int kSpinProbes = 64;
#endif

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> waiters_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// The per-node wakeup unit: a set of gates, one per hardware comm thread,
/// plus aggregate statistics.  The network fabric wakes the gate attached
/// to the reception FIFO's servicing thread; worker threads wake the gate
/// of the comm thread whose work queue they posted to.
class WakeupUnit {
 public:
  explicit WakeupUnit(unsigned gates)
      : count_(gates), gates_(new WaitGate[gates]) {}

  WaitGate& gate(unsigned i) { return gates_[i]; }
  const WaitGate& gate(unsigned i) const { return gates_[i]; }
  unsigned gate_count() const { return count_; }

  std::uint64_t total_wakeups() const {
    std::uint64_t n = 0;
    for (unsigned i = 0; i < count_; ++i) n += gates_[i].wakeup_count();
    return n;
  }

 private:
  unsigned count_;
  std::unique_ptr<WaitGate[]> gates_;  // WaitGate is immovable; stable array
};

}  // namespace bgq::wakeup
