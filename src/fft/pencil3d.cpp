#include "fft/pencil3d.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace bgq::fft {

namespace {

/// P2P transpose-block message prefix.
struct BlockHeader {
  std::uint32_t phase;
  std::uint32_t src_idx;  ///< sender's slot (its row or col index)
};

std::size_t isqrt(std::size_t p) {
  auto g = static_cast<std::size_t>(std::sqrt(static_cast<double>(p)));
  while (g * g > p) --g;
  while ((g + 1) * (g + 1) <= p) ++g;
  return g;
}

}  // namespace

Pencil3DFFT::Pencil3DFFT(cvs::Machine& machine, std::size_t n,
                         Transport transport, m2m::Coordinator* coord,
                         std::uint32_t tag_base)
    : machine_(machine),
      n_(n),
      g_(isqrt(machine.pe_count())),
      b_(n / (g_ == 0 ? 1 : g_)),
      transport_(transport),
      coord_(coord) {
  if (g_ * g_ != machine.pe_count()) {
    throw std::invalid_argument("PE count must be a perfect square (G x G)");
  }
  if (n % g_ != 0) {
    throw std::invalid_argument("grid size must be divisible by G");
  }
  if (!Fft1D::smooth(n)) {
    throw std::invalid_argument("grid size must be 2,3,5-smooth");
  }
  if (transport_ == Transport::kM2M && coord_ == nullptr) {
    throw std::invalid_argument("m2m transport needs a Coordinator");
  }

  const std::size_t elems = n_ * b_ * b_;
  const std::size_t block_bytes = b_ * b_ * b_ * sizeof(cplx);
  states_.reserve(machine.pe_count());
  for (cvs::PeRank r = 0; r < machine.pe_count(); ++r) {
    states_.push_back(std::make_unique<PeState>(elems, n_));
  }

  if (transport_ == Transport::kP2P) {
    p2p_handler_ = machine_.register_handler(
        [this, block_bytes](cvs::Pe& pe, cvs::Message* m) {
          BlockHeader hdr;
          std::memcpy(&hdr, m->payload(), sizeof(hdr));
          PeState& st = *states_[pe.rank()];
          auto& recv = st.recv[hdr.phase];
          std::memcpy(reinterpret_cast<std::byte*>(recv.data()) +
                          hdr.src_idx * block_bytes,
                      m->payload() + sizeof(hdr), block_bytes);
          pe.free_message(m);
          st.arrived[hdr.phase].complete();
        });
  } else {
    for (cvs::PeRank r = 0; r < machine.pe_count(); ++r) {
      const std::size_t row = r / g_, col = r % g_;
      PeState& st = *states_[r];
      for (unsigned ph = 0; ph < kPhases; ++ph) {
        auto phase = static_cast<Phase>(ph);
        m2m::Handle& h =
            coord_->create(r, tag_base + ph, g_, g_);
        h.set_send_base(reinterpret_cast<const std::byte*>(
            st.pack[ph].data()));
        h.set_recv_base(reinterpret_cast<std::byte*>(st.recv[ph].data()));
        for (std::size_t i = 0; i < g_; ++i) {
          h.set_send(i, peer(phase, row, col, i), my_slot(phase, row, col),
                     i * block_bytes, block_bytes);
          h.set_recv(i, i * block_bytes, block_bytes);
        }
        st.handles[ph] = &h;
      }
    }
  }
}

cvs::PeRank Pencil3DFFT::peer(Phase phase, std::size_t row, std::size_t col,
                              std::size_t i) const {
  switch (phase) {
    case kFwd1:
    case kBwd1:
      return static_cast<cvs::PeRank>(row * g_ + i);  // within my row
    case kFwd2:
    case kBwd2:
      return static_cast<cvs::PeRank>(i * g_ + col);  // within my column
    default:
      return 0;
  }
  (void)col;
  (void)row;
}

std::uint32_t Pencil3DFFT::my_slot(Phase phase, std::size_t row,
                                   std::size_t col) const {
  switch (phase) {
    case kFwd1:
    case kBwd1:
      return static_cast<std::uint32_t>(col);
    case kFwd2:
    case kBwd2:
      return static_cast<std::uint32_t>(row);
    default:
      return 0;
  }
}

void Pencil3DFFT::pack_phase(Phase phase, PeState& st, std::size_t row,
                             std::size_t col) const {
  const std::size_t B = b_, n = n_;
  auto& pack = st.pack[phase];
  const auto& A = st.data;
  const std::size_t blk = B * B * B;
  for (std::size_t i = 0; i < g_; ++i) {
    cplx* out = pack.data() + i * blk;
    switch (phase) {
      case kFwd1:
        // To (row, i): my z-slab z in [i*B, i*B+B), laid out (bx, by, dz).
        for (std::size_t bx = 0; bx < B; ++bx)
          for (std::size_t by = 0; by < B; ++by)
            std::memcpy(out + (bx * B + by) * B,
                        A.data() + (bx * B + by) * n + i * B,
                        B * sizeof(cplx));
        break;
      case kFwd2:
        // To (i, col): my y-slab y in [i*B, i*B+B), laid out (bx, bz, dy).
        for (std::size_t bx = 0; bx < B; ++bx)
          for (std::size_t bz = 0; bz < B; ++bz)
            std::memcpy(out + (bx * B + bz) * B,
                        A.data() + (bx * B + bz) * n + i * B,
                        B * sizeof(cplx));
        break;
      case kBwd2:
        // Inverse of kFwd2: to (i, col) send x in [i*B, i*B+B) from the
        // X layout, ordered (dx, bz, by) so the receiver's kFwd2 unpack
        // ordering is reproduced by the shared unpack below.
        for (std::size_t dx = 0; dx < B; ++dx)
          for (std::size_t bz = 0; bz < B; ++bz)
            for (std::size_t by = 0; by < B; ++by)
              out[(dx * B + bz) * B + by] =
                  A[(by * B + bz) * n + i * B + dx];
        break;
      case kBwd1:
        // Inverse of kFwd1: to (row, i) send y in [i*B, i*B+B) from the
        // Y layout, ordered (bx, dy, dz) with dz = my z block.
        for (std::size_t bx = 0; bx < B; ++bx)
          for (std::size_t dy = 0; dy < B; ++dy)
            for (std::size_t dz = 0; dz < B; ++dz)
              out[(bx * B + dy) * B + dz] =
                  A[(bx * B + dz) * n + i * B + dy];
        break;
      default:
        break;
    }
  }
  (void)row;
  (void)col;
}

void Pencil3DFFT::unpack_phase(Phase phase, PeState& st, std::size_t row,
                               std::size_t col) const {
  const std::size_t B = b_, n = n_;
  const auto& recv = st.recv[phase];
  auto& A = st.data;
  const std::size_t blk = B * B * B;
  for (std::size_t i = 0; i < g_; ++i) {
    const cplx* in = recv.data() + i * blk;
    switch (phase) {
      case kFwd1:
        // From (row, i): y in [i*B, i*B+B), z was my block (dz local).
        // Build Y layout A[(bx*B+dz)*n + y].
        for (std::size_t bx = 0; bx < B; ++bx)
          for (std::size_t by = 0; by < B; ++by)
            for (std::size_t dz = 0; dz < B; ++dz)
              A[(bx * B + dz) * n + i * B + by] =
                  in[(bx * B + by) * B + dz];
        break;
      case kFwd2:
        // From (i, col): x in [i*B, i*B+B), y block mine (dy local).
        // Build X layout A[(dy*B+bz)*n + x].
        for (std::size_t bx = 0; bx < B; ++bx)
          for (std::size_t bz = 0; bz < B; ++bz)
            for (std::size_t dy = 0; dy < B; ++dy)
              A[(dy * B + bz) * n + i * B + bx] =
                  in[(bx * B + bz) * B + dy];
        break;
      case kBwd2:
        // From (i, col): y in [i*B, i*B+B) returns; rebuild Y layout.
        // Sender packed (dx, bz, by) with dx local to me.
        for (std::size_t dx = 0; dx < B; ++dx)
          for (std::size_t bz = 0; bz < B; ++bz)
            for (std::size_t by = 0; by < B; ++by)
              A[(dx * B + bz) * n + i * B + by] =
                  in[(dx * B + bz) * B + by];
        break;
      case kBwd1:
        // From (row, i): z in [i*B, i*B+B) returns; rebuild Z layout.
        // Sender packed (bx, dy, dz) with dy local to me.
        for (std::size_t bx = 0; bx < B; ++bx)
          for (std::size_t dy = 0; dy < B; ++dy)
            std::memcpy(A.data() + (bx * B + dy) * n + i * B,
                        in + (bx * B + dy) * B, B * sizeof(cplx));
        break;
      default:
        break;
    }
  }
  (void)row;
  (void)col;
}

void Pencil3DFFT::exchange(cvs::Pe& pe, Phase phase) {
  PeState& st = *states_[pe.rank()];
  const std::size_t row = pe.rank() / g_, col = pe.rank() % g_;
  const std::size_t blk_bytes = b_ * b_ * b_ * sizeof(cplx);

  pack_phase(phase, st, row, col);
  const std::uint64_t target = ++st.epoch[phase];

  if (transport_ == Transport::kM2M) {
    m2m::Handle& h = *st.handles[phase];
    h.start();
    while (!h.recv_done(target) || !h.send_done(target)) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
  } else {
    for (std::size_t i = 0; i < g_; ++i) {
      const cvs::PeRank dst = peer(phase, row, col, i);
      cvs::Message* m = pe.alloc_message(sizeof(BlockHeader) + blk_bytes,
                                         p2p_handler_);
      BlockHeader hdr{static_cast<std::uint32_t>(phase),
                      my_slot(phase, row, col)};
      std::memcpy(m->payload(), &hdr, sizeof(hdr));
      std::memcpy(m->payload() + sizeof(hdr),
                  st.pack[phase].data() + i * b_ * b_ * b_, blk_bytes);
      pe.send_message(dst, m);
    }
    while (!st.arrived[phase].reached(target * g_)) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
  }
  unpack_phase(phase, st, row, col);
}

void Pencil3DFFT::forward(cvs::Pe& pe) {
  pe.barrier();  // previous iteration fully unpacked everywhere
  PeState& st = *states_[pe.rank()];
  st.plan.forward_many(st.data.data(), b_ * b_);  // FFT over z
  exchange(pe, kFwd1);
  st.plan.forward_many(st.data.data(), b_ * b_);  // FFT over y
  exchange(pe, kFwd2);
  st.plan.forward_many(st.data.data(), b_ * b_);  // FFT over x
}

void Pencil3DFFT::backward(cvs::Pe& pe) {
  pe.barrier();
  PeState& st = *states_[pe.rank()];
  st.plan.backward_many(st.data.data(), b_ * b_);  // inverse FFT over x
  exchange(pe, kBwd2);
  st.plan.backward_many(st.data.data(), b_ * b_);  // inverse FFT over y
  exchange(pe, kBwd1);
  st.plan.backward_many(st.data.data(), b_ * b_);  // inverse FFT over z
}

void Pencil3DFFT::roundtrip(cvs::Pe& pe) {
  forward(pe);
  backward(pe);
  // Unscaled backward leaves a factor n^3.
  PeState& st = *states_[pe.rank()];
  const double s = 1.0 / (static_cast<double>(n_) * static_cast<double>(n_) *
                          static_cast<double>(n_));
  for (auto& v : st.data) v *= s;
}

}  // namespace bgq::fft
