// Mixed-radix 1-D complex FFT (radices 2, 3, 5).
//
// Written from scratch (no FFTW on BG/Q either — NAMD used IBM ESSL or its
// own kernels).  Covers every size the paper's experiments need: the
// 32/64/128 Table-I cubes and the PME grid extents 216, 864, 1080 (all
// 2,3,5-smooth).  Plan-once / execute-many, matching how the PME pencils
// reuse plans every timestep.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace bgq::fft {

using cplx = std::complex<double>;

/// A planned 1-D transform of fixed length n.
class Fft1D {
 public:
  /// n must be >= 1 and 2,3,5-smooth; throws std::invalid_argument else.
  explicit Fft1D(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// In-place forward DFT: X[k] = sum_j x[j] e^{-2*pi*i*jk/n}.
  void forward(cplx* x) const;

  /// In-place inverse DFT, scaled by 1/n (forward then inverse is
  /// the identity).
  void inverse(cplx* x) const;

  /// Unscaled inverse (backward) transform — what a forward+backward
  /// convolution pipeline composes with its own normalization.
  void backward(cplx* x) const;

  /// Forward-transform `count` contiguous pencils of length n starting at
  /// `base` (pencil p at base + p*n).
  void forward_many(cplx* base, std::size_t count) const;
  void backward_many(cplx* base, std::size_t count) const;

  /// True if n factors into 2s, 3s and 5s only.
  static bool smooth(std::size_t n) noexcept;

  /// Floating-point operation estimate (the standard 5 n log2 n), used by
  /// the scale-out cost models.
  static double flops(std::size_t n) noexcept;

 private:
  void transform(cplx* x, bool inverse) const;
  void rec(const cplx* in, cplx* out, std::size_t n, std::size_t stride,
           std::size_t tw_mult, bool inverse, std::size_t level) const;

  std::size_t n_;
  std::vector<std::size_t> factors_;
  std::vector<cplx> twiddle_;          // e^{-2 pi i j / n}, j in [0, n)
  mutable std::vector<cplx> scratch_;  // out-of-place recursion target
};

}  // namespace bgq::fft
