#include "fft/fft1d.hpp"

#include <cmath>
#include <cstring>
#include <numbers>
#include <stdexcept>

namespace bgq::fft {

namespace {

std::size_t smallest_factor(std::size_t n) {
  if (n % 2 == 0) return 2;
  if (n % 3 == 0) return 3;
  if (n % 5 == 0) return 5;
  return n;  // not smooth; caught at plan time
}

}  // namespace

bool Fft1D::smooth(std::size_t n) noexcept {
  if (n == 0) return false;
  for (std::size_t f : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    while (n % f == 0) n /= f;
  }
  return n == 1;
}

double Fft1D::flops(std::size_t n) noexcept {
  return n <= 1 ? 0.0
               : 5.0 * static_cast<double>(n) *
                     (std::log2(static_cast<double>(n)));
}

Fft1D::Fft1D(std::size_t n) : n_(n) {
  if (!smooth(n)) {
    throw std::invalid_argument("FFT size must be 2,3,5-smooth and >= 1");
  }
  std::size_t rem = n;
  while (rem > 1) {
    const std::size_t f = smallest_factor(rem);
    factors_.push_back(f);
    rem /= f;
  }
  twiddle_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) /
                       static_cast<double>(n);
    twiddle_[j] = cplx(std::cos(ang), std::sin(ang));
  }
  scratch_.resize(n);
}

// Decimation-in-time Cooley–Tukey, generic radix.  `in` is read with
// `stride`; `out` receives the n contiguous results.  A sub-transform of
// size m uses W_m^e = W_N^{e * tw_mult} with tw_mult = N/m.
void Fft1D::rec(const cplx* in, cplx* out, std::size_t n, std::size_t stride,
                std::size_t tw_mult, bool inverse,
                std::size_t level) const {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  const std::size_t r = factors_[level];
  const std::size_t m = n / r;

  // r sub-DFTs over the decimated sequences in[q], in[q+r], ...
  for (std::size_t q = 0; q < r; ++q) {
    rec(in + q * stride, out + q * m, m, stride * r, tw_mult * r, inverse,
        level + 1);
  }

  // Combine.  Reads {q*m + k2} and writes {j*m + k2} touch the same index
  // set for each k2, so a radix-sized temporary makes this in-place.
  cplx t[8];  // max radix is 5
  for (std::size_t k2 = 0; k2 < m; ++k2) {
    for (std::size_t q = 0; q < r; ++q) t[q] = out[q * m + k2];
    for (std::size_t j = 0; j < r; ++j) {
      const std::size_t k = k2 + j * m;
      cplx acc = t[0];  // q = 0 twiddle is 1
      for (std::size_t q = 1; q < r; ++q) {
        const std::size_t e = (q * k * tw_mult) % n_;
        const cplx w =
            inverse ? std::conj(twiddle_[e]) : twiddle_[e];
        acc += t[q] * w;
      }
      out[k] = acc;
    }
  }
}

void Fft1D::transform(cplx* x, bool inverse) const {
  if (n_ == 1) return;
  rec(x, scratch_.data(), n_, 1, 1, inverse, 0);
  std::memcpy(x, scratch_.data(), n_ * sizeof(cplx));
}

void Fft1D::forward(cplx* x) const { transform(x, false); }

void Fft1D::backward(cplx* x) const { transform(x, true); }

void Fft1D::inverse(cplx* x) const {
  transform(x, true);
  const double s = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] *= s;
}

void Fft1D::forward_many(cplx* base, std::size_t count) const {
  for (std::size_t p = 0; p < count; ++p) forward(base + p * n_);
}

void Fft1D::backward_many(cplx* base, std::size_t count) const {
  for (std::size_t p = 0; p < count; ++p) backward(base + p * n_);
}

}  // namespace bgq::fft
