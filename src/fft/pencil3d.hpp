// Pencil-decomposed 3-D complex FFT over the Converse runtime (§IV-A).
//
// "We parallelize 3D-FFT computation via a 2D pencil decomposition where
//  each processor has a subset of the data along two dimensions and all
//  input points in the 3rd dimension called a pencil."
//
// PEs form a G x G grid (P = G^2, rank p -> row r = p/G, col c = p%G);
// the n^3 grid (n divisible by G, B = n/G) moves through three layouts:
//
//   Z-pencils  A[(bx*B+by)*n + z]   x = r*B+bx, y = c*B+by   (input)
//   Y-pencils  A[(bx*B+bz)*n + y]   x = r*B+bx, z = c*B+bz
//   X-pencils  A[(by*B+bz)*n + x]   y = r*B+by, z = c*B+bz   (output)
//
// Forward: FFT_z -> transpose within each row -> FFT_y -> transpose within
// each column -> FFT_x.  Backward inverts the pipeline.  Each transpose
// exchanges G blocks of B^3 complex numbers per PE.
//
// Two transports implement the exchange (the Table-I comparison):
//   * kP2P — one Converse message per peer per transpose (allocate, copy,
//     schedule, handle: the per-message overheads the paper measures);
//   * kM2M — persistent CmiDirectManytomany handles registered once;
//     start() fires the whole burst through the comm threads.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "converse/machine.hpp"
#include "fft/fft1d.hpp"
#include "l2atomic/completion.hpp"
#include "m2m/manytomany.hpp"

namespace bgq::fft {

enum class Transport { kP2P, kM2M };

/// Machine-wide distributed 3-D FFT.  Construct before Machine::run();
/// every PE then calls forward()/backward() collectively.
class Pencil3DFFT {
 public:
  /// `coord` is required for Transport::kM2M (ignored for kP2P).
  /// `tag_base`: four consecutive m2m tags are claimed from here.
  Pencil3DFFT(cvs::Machine& machine, std::size_t n, Transport transport,
              m2m::Coordinator* coord = nullptr,
              std::uint32_t tag_base = 100);

  Pencil3DFFT(const Pencil3DFFT&) = delete;
  Pencil3DFFT& operator=(const Pencil3DFFT&) = delete;

  std::size_t n() const noexcept { return n_; }
  std::size_t grid() const noexcept { return g_; }    ///< G
  std::size_t block() const noexcept { return b_; }   ///< B = n/G
  std::size_t local_elems() const noexcept { return n_ * b_ * b_; }

  /// PE-local grid storage (Z-pencil layout before forward, X-pencil
  /// after; backward restores Z-pencil layout).
  cplx* local_data(cvs::PeRank r) { return states_[r]->data.data(); }

  /// Collective: all PEs must call.  Blocking (internally progresses the
  /// runtime while waiting for transpose blocks).
  void forward(cvs::Pe& pe);
  void backward(cvs::Pe& pe);

  /// One full forward+backward, scaled so data round-trips to the input —
  /// the Table-I "time step" operation.
  void roundtrip(cvs::Pe& pe);

  // Layout helpers (for tests and charge-grid producers/consumers).
  std::size_t z_index(std::size_t bx, std::size_t by, std::size_t z) const {
    return (bx * b_ + by) * n_ + z;
  }
  std::size_t x_index(std::size_t by, std::size_t bz, std::size_t x) const {
    return (by * b_ + bz) * n_ + x;
  }

 private:
  // Transpose phases.
  enum Phase : unsigned {
    kFwd1 = 0,  ///< Z->Y, exchange within row
    kFwd2 = 1,  ///< Y->X, exchange within column
    kBwd2 = 2,  ///< X->Y, exchange within column
    kBwd1 = 3,  ///< Y->Z, exchange within row
    kPhases = 4,
  };

  struct PeState {
    explicit PeState(std::size_t elems, std::size_t plan_n)
        : data(elems), plan(plan_n) {
      for (auto& v : pack) v.resize(elems);
      for (auto& v : recv) v.resize(elems);
    }
    std::vector<cplx> data;
    std::vector<cplx> pack[kPhases];
    std::vector<cplx> recv[kPhases];
    l2::CompletionCounter arrived[kPhases];
    std::uint64_t epoch[kPhases] = {0, 0, 0, 0};
    m2m::Handle* handles[kPhases] = {nullptr, nullptr, nullptr, nullptr};
    Fft1D plan;  // per-PE plan: Fft1D scratch is not shareable
  };

  /// Peer PE for exchange index i in `phase` as seen from (row, col).
  cvs::PeRank peer(Phase phase, std::size_t row, std::size_t col,
                   std::size_t i) const;
  /// This PE's slot index at its peers for `phase`.
  std::uint32_t my_slot(Phase phase, std::size_t row, std::size_t col) const;

  void pack_phase(Phase phase, PeState& st, std::size_t row,
                  std::size_t col) const;
  void unpack_phase(Phase phase, PeState& st, std::size_t row,
                    std::size_t col) const;
  void exchange(cvs::Pe& pe, Phase phase);

  cvs::Machine& machine_;
  const std::size_t n_;
  const std::size_t g_;
  const std::size_t b_;
  const Transport transport_;
  m2m::Coordinator* coord_;
  cvs::HandlerId p2p_handler_ = 0;
  std::vector<std::unique_ptr<PeState>> states_;
};

}  // namespace bgq::fft
