// bgq-run: launch an emulated job as real OS processes.
//
// Spawns --np copies of the bgq-app binary, one per transport rank, each
// configured through its BGQ_TRANSPORT environment variable (the same
// grammar MachineConfig::transport accepts), waits for them, and merges
// their bgq-app-v1 reports: every element of the job must be reported by
// exactly one rank (its home), and the per-element digests fold in
// element order into the combined job digest — the value that must match
// a single-process run of the same flags bit-for-bit.
//
//   bgq-run --np=4 --transport=shm --app=fft --steps=12
//   bgq-run --np=4 --transport=socket --app=md --kill=1@150msg --json=out.json
//
// --kill=R@SPEC hands rank R (and only rank R) a BGQ_FAULT_PLAN crash
// event ("crash@R:SPEC", e.g. 40ms or 150msg).  The rank fires it by
// exiting with code 42 — a real OS process death, no destructors — and
// the survivors must detect the silence, roll back to the last committed
// buddy checkpoint and replay; bgq-run then requires exit 42 from the
// victim, at least one recovery among the survivors, and a complete
// element merge from the survivors alone.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "trace/json.hpp"
#include "transport/shm.hpp"

namespace {

struct Options {
  unsigned np = 4;
  std::string transport = "shm";  // shm | socket
  bool tcp = false;
  std::string app = "fft";
  std::uint64_t steps = 12;
  std::uint64_t ckpt_ms = 5;
  std::uint64_t timeout_ms = 40;   // failure detector
  std::uint64_t deadline_s = 120;  // whole-job watchdog
  std::string session;
  std::string kill;  // "R@40ms" / "R@150msg"
  std::string json;
  std::string bin;  // bgq-app path; default: next to this binary
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--np=N] [--transport=shm|socket] [--tcp] [--app=fft|md]\n"
      "          [--steps=N] [--ckpt-ms=N] [--timeout-ms=N] [--session=S]\n"
      "          [--kill=RANK@SPEC] [--deadline=SECONDS] [--json=PATH]\n"
      "          [--bin=PATH]\n",
      argv0);
  std::exit(2);
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0';
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto eq = a.find('=');
    const std::string k = a.substr(0, eq);
    const std::string v = eq == std::string::npos ? "" : a.substr(eq + 1);
    std::uint64_t n = 0;
    if (k == "--np" && parse_u64(v, n)) {
      o.np = static_cast<unsigned>(n);
    } else if (k == "--transport") {
      o.transport = v;
      if (v != "shm" && v != "socket") usage(argv[0]);
    } else if (a == "--tcp") {
      o.tcp = true;
    } else if (k == "--app") {
      o.app = v;
    } else if (k == "--steps" && parse_u64(v, n)) {
      o.steps = n;
    } else if (k == "--ckpt-ms" && parse_u64(v, n)) {
      o.ckpt_ms = n;
    } else if (k == "--timeout-ms" && parse_u64(v, n)) {
      o.timeout_ms = n;
    } else if (k == "--deadline" && parse_u64(v, n)) {
      o.deadline_s = n;
    } else if (k == "--session") {
      o.session = v;
    } else if (k == "--kill") {
      o.kill = v;
    } else if (k == "--json") {
      o.json = v;
    } else if (k == "--bin") {
      o.bin = v;
    } else {
      usage(argv[0]);
    }
  }
  if (o.np < 2 || o.np > 64) usage(argv[0]);
  return o;
}

std::string sibling_binary(const char* argv0, const char* name) {
  std::string s(argv0);
  const auto slash = s.rfind('/');
  return slash == std::string::npos ? std::string(name)
                                    : s.substr(0, slash + 1) + name;
}

std::uint64_t now_ms() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

char hex_digit(unsigned v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

std::string hex64(std::uint64_t v) {
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) {
    s[static_cast<std::size_t>(i)] = hex_digit(v & 0xf);
  }
  return s;
}

struct Child {
  pid_t pid = -1;
  int out_fd = -1;
  int exit_code = -1;
  bool signaled = false;
  std::string stdout_text;
};

/// Scan `src` for `"key":` after `from` and parse the integer that
/// follows.  Returns npos-sentinel false when absent.
bool find_u64(const std::string& src, const std::string& key,
              std::size_t from, std::uint64_t& out, std::size_t* at) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = src.find(needle, from);
  if (pos == std::string::npos) return false;
  out = std::strtoull(src.c_str() + pos + needle.size(), nullptr, 10);
  if (at != nullptr) *at = pos + needle.size();
  return true;
}

bool find_hex64(const std::string& src, const std::string& key,
                std::size_t from, std::uint64_t& out, std::size_t* at) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = src.find(needle, from);
  if (pos == std::string::npos) return false;
  out = std::strtoull(src.c_str() + pos + needle.size(), nullptr, 16);
  if (at != nullptr) *at = pos + needle.size();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const std::string bin =
      opt.bin.empty() ? sibling_binary(argv[0], "bgq-app") : opt.bin;
  const std::string session =
      opt.session.empty() ? "run" + std::to_string(::getpid()) : opt.session;

  // Victim rank of --kill (if any): the only rank handed a fault plan.
  int kill_rank = -1;
  std::string kill_spec;
  if (!opt.kill.empty()) {
    const auto at = opt.kill.find('@');
    std::uint64_t r = 0;
    if (at == std::string::npos || !parse_u64(opt.kill.substr(0, at), r) ||
        r >= opt.np) {
      std::fprintf(stderr, "bgq-run: bad --kill (want RANK@SPEC)\n");
      return 2;
    }
    kill_rank = static_cast<int>(r);
    kill_spec = opt.kill.substr(at + 1);
  }

  // A stale segment/socket from a dead prior job with this session tag
  // must not confuse rank bring-up.
  bgq::transport::ShmTransport::unlink_session(session);

  std::vector<Child> kids(opt.np);
  for (unsigned r = 0; r < opt.np; ++r) {
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      std::perror("bgq-run: pipe");
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("bgq-run: fork");
      return 1;
    }
    if (pid == 0) {
      ::close(pipefd[0]);
      ::dup2(pipefd[1], STDOUT_FILENO);
      ::close(pipefd[1]);
      std::string tspec = "kind=" + opt.transport +
                          ",nprocs=" + std::to_string(opt.np) +
                          ",rank=" + std::to_string(r) +
                          ",session=" + session;
      if (opt.transport == "socket" && opt.tcp) tspec += ",tcp=1";
      ::setenv("BGQ_TRANSPORT", tspec.c_str(), 1);
      if (static_cast<int>(r) == kill_rank) {
        const std::string plan =
            "crash@" + std::to_string(r) + ":" + kill_spec;
        ::setenv("BGQ_FAULT_PLAN", plan.c_str(), 1);
      } else {
        ::unsetenv("BGQ_FAULT_PLAN");
      }
      const std::string app_arg = "--app=" + opt.app;
      const std::string procs_arg = "--procs=" + std::to_string(opt.np);
      const std::string steps_arg = "--steps=" + std::to_string(opt.steps);
      const std::string ckpt_arg = "--ckpt-ms=" + std::to_string(opt.ckpt_ms);
      const std::string to_arg =
          "--timeout-ms=" + std::to_string(opt.timeout_ms);
      std::vector<char*> cargv;
      cargv.push_back(const_cast<char*>(bin.c_str()));
      cargv.push_back(const_cast<char*>(app_arg.c_str()));
      cargv.push_back(const_cast<char*>(procs_arg.c_str()));
      cargv.push_back(const_cast<char*>(steps_arg.c_str()));
      cargv.push_back(const_cast<char*>(ckpt_arg.c_str()));
      cargv.push_back(const_cast<char*>(to_arg.c_str()));
      cargv.push_back(const_cast<char*>("--json=-"));
      cargv.push_back(nullptr);
      ::execv(bin.c_str(), cargv.data());
      std::fprintf(stderr, "bgq-run: exec %s: %s\n", bin.c_str(),
                   std::strerror(errno));
      std::_Exit(127);
    }
    ::close(pipefd[1]);
    kids[r].pid = pid;
    kids[r].out_fd = pipefd[0];
  }

  // Reap with a deadline; a wedged job is killed, not waited on forever.
  const std::uint64_t deadline = now_ms() + opt.deadline_s * 1000u;
  unsigned live = opt.np;
  bool timed_out = false;
  while (live > 0) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid > 0) {
      for (auto& k : kids) {
        if (k.pid != pid) continue;
        if (WIFEXITED(status)) {
          k.exit_code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          k.signaled = true;
          k.exit_code = 128 + WTERMSIG(status);
        }
        --live;
      }
      continue;
    }
    if (now_ms() > deadline) {
      timed_out = true;
      for (auto& k : kids) {
        if (k.exit_code < 0 && !k.signaled) ::kill(k.pid, SIGKILL);
      }
      for (auto& k : kids) {
        if (k.exit_code < 0 && !k.signaled) {
          ::waitpid(k.pid, &status, 0);
          k.signaled = true;
          k.exit_code = 137;
        }
      }
      break;
    }
    ::usleep(2000);
  }

  // Children have exited (their write ends are closed): drain the pipes.
  for (auto& k : kids) {
    char buf[4096];
    ssize_t n;
    while ((n = ::read(k.out_fd, buf, sizeof(buf))) > 0) {
      k.stdout_text.append(buf, static_cast<std::size_t>(n));
    }
    ::close(k.out_fd);
  }

  // Leftover namespace entries (normal exits clean up after themselves;
  // a killed rank cannot).
  bgq::transport::ShmTransport::unlink_session(session);
  for (unsigned r = 0; r < opt.np; ++r) {
    const std::string path =
        "/tmp/" + session + "." + std::to_string(r) + ".sock";
    ::unlink(path.c_str());
  }

  // ---- merge the rank reports -------------------------------------------
  bool ok = !timed_out;
  if (timed_out) std::fprintf(stderr, "bgq-run: job deadline exceeded\n");
  bool any_finished = false;
  std::uint64_t recoveries = 0;
  std::map<std::uint64_t, std::uint64_t> elements;  // index -> digest
  for (unsigned r = 0; r < opt.np; ++r) {
    Child& k = kids[r];
    const bool victim = static_cast<int>(r) == kill_rank;
    if (victim) {
      if (k.exit_code != 42) {
        std::fprintf(stderr,
                     "bgq-run: rank %u was the --kill victim but exited %d "
                     "(expected 42: crash never fired?)\n",
                     r, k.exit_code);
        ok = false;
      }
      continue;  // a dead rank reports nothing
    }
    if (k.exit_code != 0) {
      std::fprintf(stderr, "bgq-run: rank %u exited %d%s\n", r, k.exit_code,
                   k.signaled ? " (signal)" : "");
      ok = false;
      continue;
    }
    const std::string& out = k.stdout_text;
    if (out.find("\"schema\":\"bgq-app-v1\"") == std::string::npos) {
      std::fprintf(stderr, "bgq-run: rank %u produced no report\n", r);
      ok = false;
      continue;
    }
    std::uint64_t fin = 0;
    if (find_u64(out, "finished", 0, fin, nullptr) && fin != 0) {
      any_finished = true;
    }
    std::uint64_t rec = 0;
    if (find_u64(out, "ft.recoveries", 0, rec, nullptr)) recoveries += rec;
    // Walk the elements array: pairs of "i" and "digest" keys.
    auto pos = out.find("\"elements\":[");
    const auto end = out.find(']', pos);
    while (pos != std::string::npos) {
      std::uint64_t idx = 0, dig = 0;
      std::size_t at_i = 0, at_d = 0;
      if (!find_u64(out, "i", pos + 1, idx, &at_i) || at_i >= end) break;
      if (!find_hex64(out, "digest", at_i, dig, &at_d) || at_d >= end) break;
      const auto [it, inserted] = elements.emplace(idx, dig);
      if (!inserted && it->second != dig) {
        std::fprintf(stderr,
                     "bgq-run: element %llu reported with conflicting "
                     "digests by two ranks\n",
                     static_cast<unsigned long long>(idx));
        ok = false;
      }
      pos = at_d;
    }
  }
  if (!any_finished) {
    std::fprintf(stderr, "bgq-run: no rank reported a finished run\n");
    ok = false;
  }
  if (kill_rank >= 0 && recoveries == 0) {
    std::fprintf(stderr,
                 "bgq-run: --kill given but no survivor recovered\n");
    ok = false;
  }
  // Gap check: the job's elements are dense 0..K-1 and every one must
  // have exactly one home among the reporting ranks.
  std::uint64_t combined = 14695981039346656037ull;
  const std::uint64_t expect =
      elements.empty() ? 0 : elements.rbegin()->first + 1;
  for (std::uint64_t e = 0; e < expect; ++e) {
    const auto it = elements.find(e);
    if (it == elements.end()) {
      std::fprintf(stderr, "bgq-run: element %llu reported by no rank\n",
                   static_cast<unsigned long long>(e));
      ok = false;
      continue;
    }
    combined = fnv1a(combined, &it->second, sizeof(it->second));
  }
  if (elements.empty()) ok = false;

  std::printf("bgq-run: app=%s transport=%s np=%u elements=%llu digest=%s "
              "recoveries=%llu %s\n",
              opt.app.c_str(), opt.transport.c_str(), opt.np,
              static_cast<unsigned long long>(elements.size()),
              hex64(combined).c_str(),
              static_cast<unsigned long long>(recoveries),
              ok ? "OK" : "FAILED");

  if (!opt.json.empty()) {
    std::ofstream os(opt.json);
    if (!os) {
      std::fprintf(stderr, "bgq-run: cannot open --json path %s\n",
                   opt.json.c_str());
      return 1;
    }
    bgq::trace::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "bgq-run-v1");
    w.kv("app", opt.app);
    w.kv("transport", opt.transport);
    w.kv("np", opt.np);
    w.kv("ok", ok ? 1 : 0);
    w.kv("finished", any_finished ? 1 : 0);
    w.kv("digest", hex64(combined));
    w.kv("elements", static_cast<std::uint64_t>(elements.size()));
    w.kv("recoveries", recoveries);
    w.key("ranks");
    w.begin_array();
    for (unsigned r = 0; r < opt.np; ++r) {
      w.begin_object();
      w.kv("rank", r);
      w.kv("exit", kids[r].exit_code);
      w.kv("victim", static_cast<int>(r) == kill_rank ? 1 : 0);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
  }
  return ok ? 0 : 1;
}
