// bgq-prof: Projections-style post-mortem analyzer for bgq-trace-v1
// flat-trace files (written by Machine::write_flat_trace or any bench's
// --trace flag).
//
// Usage:
//   bgq-prof <trace.json>            text report to stdout
//   bgq-prof <trace.json> --json     bgq-prof-v1 JSON to stdout
//   bgq-prof <trace.json> --json out.json --text report.txt
//   bgq-prof <trace.json> --bins 32  time-profile resolution
//
// Reads "-" as stdin.  Exit status is non-zero on unreadable input or a
// malformed/mismatched schema, so CI can smoke-test traces by running it.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "trace/analysis.hpp"
#include "trace/trace_io.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <trace.json|-> [--json [file]] [--text [file]]"
               " [--bins N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  bool want_json = false, want_text = false;
  std::string json_path, text_path;
  unsigned bins = 64;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto optional_path = [&](std::string& out) {
      if (i + 1 < argc && argv[i + 1][0] != '-') out = argv[++i];
    };
    if (arg == "--json") {
      want_json = true;
      optional_path(json_path);
    } else if (arg == "--text") {
      want_text = true;
      optional_path(text_path);
    } else if (arg == "--bins") {
      if (i + 1 >= argc) return usage(argv[0]);
      bins = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);
  if (!want_json && !want_text) want_text = true;

  std::string text;
  if (input == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream f(input);
    if (!f) {
      std::cerr << "bgq-prof: cannot open " << input << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  }

  bgq::trace::Analysis analysis;
  try {
    const bgq::trace::FlatTrace flat = bgq::trace::read_flat_trace(text);
    analysis = bgq::trace::analyze(flat, bins);
  } catch (const std::exception& e) {
    std::cerr << "bgq-prof: " << e.what() << "\n";
    return 1;
  }

  auto emit = [&](bool enabled, const std::string& path, auto writer) {
    if (!enabled) return true;
    if (path.empty()) {
      writer(std::cout);
      return true;
    }
    std::ofstream f(path);
    if (!f) {
      std::cerr << "bgq-prof: cannot write " << path << "\n";
      return false;
    }
    writer(f);
    return true;
  };
  const bool ok =
      emit(want_json, json_path,
           [&](std::ostream& os) { bgq::trace::write_prof_json(os, analysis); }) &&
      emit(want_text, text_path,
           [&](std::ostream& os) { bgq::trace::write_prof_text(os, analysis); });
  return ok ? 0 : 1;
}
