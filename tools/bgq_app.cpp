// bgq-app: run one rank of an emulated job — or the whole job when no
// transport is configured.
//
// The binary hosts one of the deterministic checkpoint-aware mini-apps
// (charm/ft_apps.hpp) on a machine whose transport comes either from
// --transport=<spec> or from the BGQ_TRANSPORT environment variable (how
// the bgq-run launcher configures the ranks it spawns).  Without either,
// the whole job runs in this process over the in-process fabric —
// exactly the configuration the tier-1 recovery tests exercise — which
// is what makes this binary the cross-backend conformance oracle: the
// same flags must produce the same element state over inproc, shm and
// socket transports, crash or no crash.
//
// With --json the rank reports per-element FNV-1a digests of the
// elements homed on it (bgq-app-v1).  A digest is only authoritative on
// the element's home rank, so a multi-process launcher merges the ranks'
// element lists — erroring on gaps or conflicts — and folds the
// per-element digests in element order into the combined job digest.
// The same fold over a single-process run's (complete) element list
// gives the reference value.
//
//   bgq-app --app=fft --procs=4 --steps=12 --ckpt-ms=5 --json=-
//
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "charm/ft_apps.hpp"
#include "trace/json.hpp"
#include "transport/config.hpp"

namespace {

using bgq::charm::FtFft2D;
using bgq::charm::FtMdRing;
using bgq::charm::Runtime;
using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Mode;
using bgq::cvs::Pe;

struct Options {
  std::string app = "fft";
  std::size_t procs = 4;
  std::uint32_t steps = 12;
  std::size_t grid = 16;       // fft: grid edge (elems = procs)
  std::size_t particles = 6;   // md: particles per patch
  std::uint64_t ckpt_ms = 5;   // 0 = fault tolerance off
  std::uint64_t timeout_ms = 40;
  std::string transport;       // explicit spec; else BGQ_TRANSPORT
  std::string json;            // output path; "-" = stdout
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--app=fft|md] [--procs=N] [--steps=N] [--grid=N]\n"
      "          [--particles=N] [--ckpt-ms=N] [--timeout-ms=N]\n"
      "          [--transport=SPEC] [--json=PATH|-]\n",
      argv0);
  std::exit(2);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto eq = a.find('=');
    const std::string k = a.substr(0, eq);
    const std::string v = eq == std::string::npos ? "" : a.substr(eq + 1);
    std::uint64_t n = 0;
    if (k == "--app") {
      o.app = v;
      if (o.app != "fft" && o.app != "md") usage(argv[0]);
    } else if (k == "--procs" && parse_u64(v.c_str(), n)) {
      o.procs = n;
    } else if (k == "--steps" && parse_u64(v.c_str(), n)) {
      o.steps = static_cast<std::uint32_t>(n);
    } else if (k == "--grid" && parse_u64(v.c_str(), n)) {
      o.grid = n;
    } else if (k == "--particles" && parse_u64(v.c_str(), n)) {
      o.particles = n;
    } else if (k == "--ckpt-ms" && parse_u64(v.c_str(), n)) {
      o.ckpt_ms = n;
    } else if (k == "--timeout-ms" && parse_u64(v.c_str(), n)) {
      o.timeout_ms = n;
    } else if (k == "--transport") {
      o.transport = v;
    } else if (k == "--json") {
      o.json = v;
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

char hex_digit(unsigned v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

std::string hex64(std::uint64_t v) {
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) {
    s[static_cast<std::size_t>(i)] = hex_digit(v & 0xf);
  }
  return s;
}

/// One element's report: authoritative only on its home rank.
struct ElemDigest {
  std::size_t index;
  std::uint64_t digest;
};

template <typename App>
void collect(const App& app, const Machine& mach,
             std::vector<ElemDigest>& out) {
  for (std::size_t e = 0; e < app.element_count(); ++e) {
    const std::size_t owner = app.element_home(e) /
                              mach.config().effective_workers_per_process();
    if (!mach.process_local(owner)) continue;
    out.push_back({e, app.element_digest(e)});
  }
}

/// Fold per-element digests in element order — the combined job digest a
/// launcher reproduces from the merged rank reports.
std::uint64_t fold(const std::vector<ElemDigest>& elems) {
  std::uint64_t h = 14695981039346656037ull;
  for (const ElemDigest& e : elems) {
    h = bgq::charm::fnv1a(h, &e.digest, sizeof(e.digest));
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  MachineConfig cfg;
  cfg.nodes = opt.procs;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 1;  // FT protocol configuration (see tests)
  if (opt.ckpt_ms != 0) {
    cfg.ft.enabled = true;
    cfg.ft.checkpoint_period_ms = opt.ckpt_ms;
    cfg.ft.heartbeat_period_ms = 2;
    cfg.ft.failure_timeout_ms = opt.timeout_ms;
    cfg.ft.watchdog_abort = false;
  }
  if (!opt.transport.empty()) {
    try {
      cfg.transport = bgq::transport::Config::parse(opt.transport);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bgq-app: bad --transport: %s\n", e.what());
      return 2;
    }
  }

  int rank = 0, nprocs = 1;
  bool finished = false;
  double final_value = 0.0;
  std::vector<ElemDigest> elems;
  std::uint64_t recoveries = 0, checkpoints = 0;
  std::uint64_t t_injects = 0, t_polls = 0, t_ring_full = 0,
                t_reconnects = 0;
  bool hang = false;

  try {
    Machine machine(cfg);
    rank = static_cast<int>(machine.local_rank());
    nprocs = static_cast<int>(machine.process_count());
    Runtime rt(machine);
    if (opt.app == "fft") {
      if (opt.grid % opt.procs != 0) {
        std::fprintf(stderr, "bgq-app: --grid must be divisible by --procs\n");
        return 2;
      }
      FtFft2D app(rt, opt.grid, opt.procs, opt.steps);
      machine.run([&](Pe& pe) {
        if (pe.rank() == 0) app.start(pe);
      });
      finished = app.finished();
      final_value = app.final_total();
      collect(app, machine, elems);
    } else {
      FtMdRing app(rt, opt.procs, opt.particles, opt.steps);
      machine.run([&](Pe& pe) {
        if (pe.rank() == 0) app.start(pe);
      });
      finished = app.finished();
      final_value = app.final_energy();
      collect(app, machine, elems);
    }
    if (auto* mgr = machine.ft_manager()) {
      recoveries = mgr->recoveries();
      checkpoints = mgr->checkpoints();
      hang = mgr->hang_detected();
    }
    const auto rep = machine.metrics_report();
    t_injects = rep.value("net.transport.injects");
    t_polls = rep.value("net.transport.polls");
    t_ring_full = rep.value("net.transport.ring_full");
    t_reconnects = rep.value("net.transport.reconnects");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgq-app: %s\n", e.what());
    return 1;
  }

  if (!opt.json.empty()) {
    std::ofstream file;
    std::ostream* os = &std::cout;
    if (opt.json != "-") {
      file.open(opt.json);
      if (!file) {
        std::fprintf(stderr, "bgq-app: cannot open --json path %s\n",
                     opt.json.c_str());
        return 1;
      }
      os = &file;
    }
    bgq::trace::JsonWriter w(*os);
    w.begin_object();
    w.kv("schema", "bgq-app-v1");
    w.kv("app", opt.app);
    w.kv("rank", rank);
    w.kv("nprocs", nprocs);
    w.kv("finished", finished ? 1 : 0);
    w.kv("final", final_value);
    w.kv("digest", hex64(fold(elems)));
    w.key("elements");
    w.begin_array();
    for (const ElemDigest& e : elems) {
      w.begin_object();
      w.kv("i", static_cast<std::uint64_t>(e.index));
      w.kv("digest", hex64(e.digest));
      w.end_object();
    }
    w.end_array();
    w.key("metrics");
    w.begin_object();
    w.kv("ft.recoveries", recoveries);
    w.kv("ft.checkpoints", checkpoints);
    w.kv("net.transport.injects", t_injects);
    w.kv("net.transport.polls", t_polls);
    w.kv("net.transport.ring_full", t_ring_full);
    w.kv("net.transport.reconnects", t_reconnects);
    w.end_object();
    w.end_object();
    *os << "\n";
  } else {
    std::fprintf(stderr,
                 "bgq-app: app=%s rank=%d/%d finished=%d elements=%zu "
                 "digest=%s recoveries=%llu\n",
                 opt.app.c_str(), rank, nprocs, finished ? 1 : 0,
                 elems.size(), hex64(fold(elems)).c_str(),
                 static_cast<unsigned long long>(recoveries));
  }
  return hang ? 3 : 0;
}
